#include "core/fleet.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace scallop::core {

namespace {

// Formats a trace detail string. Callers guard on trace() being set, so
// the formatting cost is only paid when tracing is on.
std::string TraceDetail(const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

FleetController::FleetController()
    : directory_(std::make_unique<LocalDirectoryShard>()),
      policy_(std::make_unique<LeastLoadedPolicy>()) {}

FleetController::~FleetController() = default;

void FleetController::Trace(obs::Category category, const std::string& name,
                            uint64_t corr, const std::string& detail) {
  if (trace_ == nullptr || sched_ == nullptr) return;
  trace_->Emit(sched_->now(), category, trace_track_, name,
               corr != 0 ? corr : active_chain_, detail);
}

size_t FleetController::AddSwitch(ControlChannel& channel, net::Ipv4 sfu_ip,
                                  size_t id_space) {
  auto member = std::make_unique<Member>();
  // Disjoint participant-id range per switch: without it, two switch
  // controllers both counting from 1 could hand out the same id, and a
  // stale Leave for a participant migrated off one switch would pass the
  // membership guard and kick a live, unrelated member on another. Under
  // a federation `id_space` is the switch's *global* index, keeping the
  // ranges disjoint across regions too.
  constexpr ParticipantId kIdStride = 1'000'000;
  if (id_space == SIZE_MAX) id_space = switches_.size();
  member->channel = &channel;
  member->owned_controller = std::make_unique<Controller>(
      channel, sfu_ip, static_cast<ParticipantId>(id_space) * kIdStride + 1);
  member->controller = member->owned_controller.get();
  member->sfu_ip = sfu_ip;
  if (sched_ == nullptr) sched_ = &channel.sched();
  member->last_heartbeat = sched_->now();
  switches_.push_back(std::move(member));
  const size_t index = switches_.size() - 1;
  topology_.EnsureNodes(switches_.size());
  channel.Subscribe(this, index);
  ArmFailureDetector(channel);
  return index;
}

void FleetController::ArmFailureDetector(const ControlChannel& channel) {
  const util::DurationUs interval = channel.config().heartbeat_interval;
  if (interval <= 0 || sched_ == nullptr) return;
  // Idempotent per channel: an equal-or-finer detector already covers
  // this channel's cadence. (The old code armed only for the *first*
  // switch's channel — a first channel with heartbeats disabled left
  // every later switch undetected.)
  if (detector_task_ != nullptr && detector_interval_ > 0 &&
      detector_interval_ <= interval) {
    return;
  }
  detector_interval_ = interval;
  detector_task_ = std::make_unique<sim::PeriodicTask>(
      *sched_, interval, [this] {
        CheckHeartbeats();
        return true;
      });
}

size_t FleetController::AddBorderSwitch(ControlChannel& channel,
                                        Controller& controller,
                                        net::Ipv4 sfu_ip) {
  for (size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i]->channel == &channel) return i;
  }
  auto member = std::make_unique<Member>();
  member->channel = &channel;
  member->controller = &controller;  // the lender's, not ours
  member->owned = false;
  member->sfu_ip = sfu_ip;
  // Guests are never policy-placed (Loads() reports them dead) and never
  // failure-detected here — the owner watches its own switch. No
  // telemetry subscription either: the channel's sink stays pointed at
  // the owner.
  member->alive = true;
  if (sched_ == nullptr) sched_ = &channel.sched();
  member->last_heartbeat = sched_->now();
  switches_.push_back(std::move(member));
  topology_.EnsureNodes(switches_.size());
  return switches_.size() - 1;
}

void FleetController::ConfigureIdSpace(MeetingId first_meeting,
                                       MeetingId meeting_stride,
                                       ParticipantId relay_id_base) {
  next_meeting_ = first_meeting;
  meeting_stride_ = meeting_stride;
  next_relay_id_ = relay_id_base;
}

void FleetController::Shutdown() {
  if (dead_) return;
  dead_ = true;
  // The control loops die with the controller; switch channels keep
  // emitting telemetry into the void (guarded in the sinks) and agents
  // keep forwarding media — a controller death is not a switch death.
  detector_task_.reset();
  detector_interval_ = 0;
  rebalance_task_.reset();
}

size_t FleetController::AdoptShardFrom(FleetController& failed,
                                       std::vector<size_t>* old_to_new) {
  // Map each of the dead controller's switch slots into this fleet:
  // switches both controllers know (border guests lent either way) merge
  // into the existing slot; everything else is appended.
  std::vector<size_t> remap(failed.switches_.size(), SIZE_MAX);
  for (size_t i = 0; i < failed.switches_.size(); ++i) {
    std::unique_ptr<Member>& slot = failed.switches_[i];
    if (slot == nullptr || slot->channel == nullptr) continue;
    size_t existing = SIZE_MAX;
    for (size_t j = 0; j < switches_.size(); ++j) {
      if (switches_[j]->channel == slot->channel) {
        existing = j;
        break;
      }
    }
    if (existing != SIZE_MAX) {
      Member& mine = *switches_[existing];
      // The per-switch bookkeeping is disjoint (each controller only
      // counts members it placed), so the counts fold additively.
      mine.participants += slot->participants;
      mine.meetings += slot->meetings;
      if (slot->owned) {
        // We were the borrower and the switch's real owner died: take
        // over its per-switch controller (sessions and id spaces
        // survive) and re-point its telemetry and failure detection.
        mine.owned_controller = std::move(slot->owned_controller);
        mine.controller = mine.owned_controller.get();
        mine.owned = true;
        mine.alive = slot->alive;
        mine.last_report = slot->last_report;
        mine.report_seen = false;  // stale reports predate the handoff
        mine.last_heartbeat = sched_ != nullptr ? sched_->now() : 0;
        mine.channel->Subscribe(this, existing);
        ArmFailureDetector(*mine.channel);
      }
      remap[i] = existing;
    } else {
      const size_t index = switches_.size();
      switches_.push_back(std::move(slot));
      Member& moved = *switches_.back();
      moved.last_heartbeat = sched_ != nullptr ? sched_->now() : 0;
      moved.report_seen = false;
      if (moved.owned) {
        moved.channel->Subscribe(this, index);
        ArmFailureDetector(*moved.channel);
      }
      remap[i] = index;
    }
  }
  topology_.EnsureNodes(switches_.size());

  auto remapped = [&remap](size_t idx) {
    if (idx == SIZE_MAX) return SIZE_MAX;  // preserve "home" sentinels
    return idx < remap.size() && remap[idx] != SIZE_MAX ? remap[idx] : idx;
  };

  // Adopt the meeting records wholesale: remap every switch index and
  // re-register the relay load on *our* link-state view (the dead
  // controller's view dies with it).
  size_t adopted = 0;
  for (MeetingId id : failed.directory_->Ids()) {
    MeetingRecord* rec = failed.directory_->Find(id);
    if (rec == nullptr || directory_->Find(id) != nullptr) continue;
    MeetingRecord moved = std::move(*rec);
    moved.placement.home = remapped(moved.placement.home);
    for (RelaySpan& span : moved.placement.spans) {
      span.switch_index = remapped(span.switch_index);
      span.parent = remapped(span.parent);
    }
    for (auto& [pid, info] : moved.members) {
      info.home_switch = remapped(info.home_switch);
    }
    for (MeetingRelay& r : moved.relays) {
      r.upstream = remapped(r.upstream);
      r.downstream = remapped(r.downstream);
      for (size_t& hop : r.backbone_path) hop = remapped(hop);
      topology_.AddLoad(r.backbone_path, r.load_bps);
    }
    for (SecondaryTree& t : moved.secondaries) {
      t.upstream = remapped(t.upstream);
      t.downstream = remapped(t.downstream);
      for (size_t& hop : t.path) hop = remapped(hop);
      for (ProtectionHop& h : t.hops) {
        h.upstream = remapped(h.upstream);
        h.downstream = remapped(h.downstream);
      }
      // Chains own their registered load (active or standby alike).
      topology_.AddLoad(t.path, t.load_bps);
    }
    if (!moved.protection_meetings.empty()) {
      std::map<size_t, MeetingId> pms;
      for (const auto& [sw, local] : moved.protection_meetings) {
        pms[remapped(sw)] = local;
      }
      moved.protection_meetings = std::move(pms);
    }
    directory_->Emplace(id, std::move(moved));
    ++adopted;
  }
  for (MeetingId id : failed.directory_->Ids()) failed.directory_->Erase(id);
  failed.switches_.clear();
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  // Each adopted meeting was re-homed to a new controller — the same
  // bookkeeping a MigrateMeeting re-home gets, so fleet-wide counters
  // show the takeover.
  stats_.placements_rebalanced += adopted;
  if (trace_ != nullptr) {
    Trace(obs::Category::kFleet, "fleet.shard_adopted", 0,
          TraceDetail("meetings=%zu switches=%zu", adopted,
                      switches_.size()));
  }
  return adopted;
}

void FleetController::SetPlacementPolicy(
    std::unique_ptr<PlacementPolicy> policy) {
  if (policy != nullptr) policy_ = std::move(policy);
  policy_->BindTopology(&topology_);
  policy_->SetStreamEstimate(relay_stream_bps_);
  policy_->SetRedundancyFactor(redundancy_.redundant_trees ? 2.0 : 1.0);
}

void FleetController::SetRedundancy(const RedundancyConfig& cfg) {
  redundancy_ = cfg;
  // Protected meetings put two trees' worth of stream load on the
  // backbone; admission must budget for both or the second tree's
  // registered load overshoots links the planner thought had headroom.
  policy_->SetRedundancyFactor(cfg.redundant_trees ? 2.0 : 1.0);
}

void FleetController::set_relay_stream_bps(double bps) {
  relay_stream_bps_ = bps;
  policy_->SetStreamEstimate(bps);
}

void FleetController::ConfigureInterSwitchLink(size_t a, size_t b,
                                               double latency_s,
                                               double capacity_bps) {
  topology_.EnsureNodes(switches_.size());
  topology_.SetLink(a, b, latency_s, capacity_bps);
}

void FleetController::SetInterSwitchLinkCapacity(size_t a, size_t b,
                                                 double capacity_bps) {
  topology_.SetLinkCapacity(a, b, capacity_bps);
  // The capacity change opens a causal chain every replan collapse and
  // tree flip it forces rides.
  const uint64_t prev_chain = active_chain_;
  if (trace_ != nullptr) {
    active_chain_ = trace_->NextCorrelation();
    Trace(obs::Category::kTopology, "topology.link_capacity", 0,
          TraceDetail("link=%zu-%zu bps=%.0f", a, b, capacity_bps));
  }
  ReplanOverloadedLinks();
  active_chain_ = prev_chain;
}

void FleetController::ReplanOverloadedLinks() {
  // Collapse one subtree riding an overloaded link at a time, re-checking
  // the overload set after every collapse: an earlier collapse may have
  // already relieved the link, and blacking out further meetings for a
  // link that is back under budget would be a needless renegotiation.
  // Each collapse removes at least one span, which bounds the loop.
  auto path_crosses = [](const std::vector<size_t>& path,
                         std::pair<size_t, size_t> link) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      size_t a = path[i], b = path[i + 1];
      if (a > b) std::swap(a, b);
      if (a == link.first && b == link.second) return true;
    }
    return false;
  };
  // A relay's *current* physical path: the promoted chain's once flipped,
  // its own backbone path otherwise.
  auto crosses = [&](const MeetingState& st, const MeetingRelay& r,
                     std::pair<size_t, size_t> link) {
    return path_crosses(CurrentRelayPath(st, r), link);
  };
  for (size_t guard = directory_->size() * switches_.size() + 1; guard > 0;
       --guard) {
    const auto overloaded = topology_.OverloadedLinks();
    if (overloaded.empty()) return;
    // Make-before-break first: a primary relay crossing an overloaded
    // link whose standby secondary avoids it flips instead of collapsing
    // — receivers keep a continuous stream and only then does the old
    // path drain. Each flip relieves the link of the primary's load, so
    // re-evaluate the overload set before touching more state.
    if (redundancy_.redundant_trees) {
      bool changed = false;
      for (MeetingId meeting : directory_->Ids()) {
        MeetingState& st = *directory_->Find(meeting);
        for (MeetingRelay& r : st.relays) {
          for (const auto& link : overloaded) {
            if (!crosses(st, r, link)) continue;
            SecondaryTree* t = SecondaryOf(st, r);
            if (t == nullptr || path_crosses(t->path, link)) continue;
            FlipRelay(st, r, *t);
            // Re-protect over whatever capacity remains (declines when
            // the cut left no disjoint path).
            PlanSecondary(st, r);
            changed = true;
            break;
          }
          if (changed) break;
        }
        if (changed) break;
        // A *secondary* riding the overloaded link while its primary does
        // not: drop the protection quietly — receivers never notice, and
        // its registered load comes off the link.
        for (auto it = st.secondaries.begin(); it != st.secondaries.end();
             ++it) {
          if (it->active) continue;
          bool rides = false;
          for (const auto& link : overloaded) {
            if (path_crosses(it->path, link)) rides = true;
          }
          if (!rides) continue;
          TearDownSecondary(st, *it, SIZE_MAX);
          st.secondaries.erase(it);
          GcProtectionMeetings(st);
          changed = true;
          break;
        }
        if (changed) break;
      }
      if (changed) continue;
    }
    bool collapsed = false;
    for (MeetingId meeting : directory_->Ids()) {
      MeetingState& st = *directory_->Find(meeting);
      size_t child = SIZE_MAX;
      for (const MeetingRelay& r : st.relays) {
        for (const auto& link : overloaded) {
          if (!crosses(st, r, link)) continue;
          // The child side of the tree edge is whichever end is deeper.
          const size_t up_d = st.placement.DepthOf(r.upstream);
          const size_t down_d = st.placement.DepthOf(r.downstream);
          child = down_d != SIZE_MAX && (up_d == SIZE_MAX || down_d > up_d)
                      ? r.downstream
                      : r.upstream;
          break;
        }
        if (child != SIZE_MAX) break;
      }
      if (child == SIZE_MAX || child == st.placement.home ||
          st.placement.SpanOn(child) == nullptr) {
        continue;
      }
      ++stats_.relay_replans;
      if (trace_ != nullptr) {
        Trace(obs::Category::kTopology, "topology.replan", 0,
              TraceDetail("meeting=%u collapsed=%zu home=%zu",
                          static_cast<unsigned>(meeting), child,
                          st.placement.home));
      }
      if (migration_cb_) migration_cb_(meeting, child, st.placement.home);
      TearDownSpan(st, child, /*switch_dead=*/false);
      st.frozen = true;
      collapsed = true;
      break;  // re-evaluate the overload set before touching more state
    }
    // Overloaded links none of our relays cross (load floor artifacts)
    // cannot be relieved by collapsing anything; stop rather than spin.
    if (!collapsed) return;
  }
}

void FleetController::OnHeartbeat(size_t switch_index) {
  if (dead_) return;  // telemetry into a crashed controller goes nowhere
  ++stats_.heartbeats_seen;
  switches_[switch_index]->last_heartbeat = sched_->now();
}

void FleetController::OnLoadReport(size_t switch_index,
                                   const SwitchLoadReport& report) {
  if (dead_) return;
  ++stats_.load_reports_seen;
  Member& m = *switches_[switch_index];
  m.last_report = report;
  m.report_seen = true;
  m.last_heartbeat = sched_->now();  // a load report proves liveness too
}

void FleetController::CheckHeartbeats() {
  if (dead_) return;
  for (size_t i = 0; i < switches_.size(); ++i) {
    Member& m = *switches_[i];
    // Border guests are the owner's to watch; their heartbeats go to the
    // owner's sink, so judging them here would always "miss".
    if (!m.owned || !m.alive || m.channel == nullptr) continue;
    const util::DurationUs interval = m.channel->config().heartbeat_interval;
    if (interval <= 0) continue;
    // The detector is calibrated to the channel: a heartbeat is only late
    // once its one-way delivery latency has passed too. Without this, any
    // configured control latency above two intervals would falsely kill
    // every switch at startup (and after every revive), before its first
    // heartbeat could possibly arrive.
    const util::DurationUs latency = m.channel->config().latency;
    const util::DurationUs gap = sched_->now() - m.last_heartbeat;
    if (gap < 2 * interval + latency) continue;  // one interval late: fine
    ++stats_.heartbeats_missed;
    const bool death = gap >= kHeartbeatMissThreshold * interval + latency;
    // The fatal miss opens a causal chain that the death and every
    // migration it forces ride; sub-threshold misses stay uncorrelated.
    if (death && trace_ != nullptr) active_chain_ = trace_->NextCorrelation();
    if (trace_ != nullptr) {
      Trace(obs::Category::kFleet, "switch.heartbeat_miss", 0,
            TraceDetail("switch=%zu gap_us=%lld", i,
                        static_cast<long long>(gap)));
    }
    if (death) {
      ++stats_.switches_failed;
      if (trace_ != nullptr) {
        Trace(obs::Category::kFleet, "switch.dead", 0,
              TraceDetail("switch=%zu", i));
      }
      OnSwitchDown(i);
      active_chain_ = 0;
    }
  }
}

void FleetController::EnableRebalancer(const RebalanceConfig& cfg) {
  if (sched_ == nullptr) {
    throw std::logic_error(
        "FleetController: EnableRebalancer needs a registered switch");
  }
  rebalance_cfg_ = cfg;
  rebalance_cfg_.enabled = true;
  if (rebalance_cfg_.cooldown <= 0) {
    rebalance_cfg_.cooldown = rebalance_cfg_.interval;
  }
  rebalance_task_ = std::make_unique<sim::PeriodicTask>(
      *sched_, rebalance_cfg_.interval, [this] {
        Rebalance();
        return true;
      });
}

void FleetController::FreezeMeetings(const std::vector<MeetingId>& meetings) {
  for (MeetingId meeting : meetings) {
    MeetingRecord* rec = directory_->Find(meeting);
    if (rec != nullptr) rec->frozen = true;
  }
}

bool FleetController::IsFrozen(MeetingId meeting) const {
  const MeetingRecord* rec = directory_->Find(meeting);
  return rec != nullptr && rec->frozen;
}

void FleetController::Rebalance() {
  if (dead_) return;
  // Decisions run on the *reported* load — what the northbound telemetry
  // says — not on the fleet's own bookkeeping; a switch that never
  // reported (or is dead) does not participate. Reported participants are
  // weighted by each switch's capacity class, so a big switch legitimately
  // carrying more load is not mistaken for an overloaded one; with every
  // class at 1.0 the comparisons are byte-identical to the unweighted
  // integers they replace.
  size_t busiest = SIZE_MAX, idlest = SIZE_MAX;
  double busiest_load = -1.0,
         idlest_load = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < switches_.size(); ++i) {
    const Member& m = *switches_[i];
    if (!m.alive || !m.report_seen) continue;
    const double cls = m.capacity_class > 0.0 ? m.capacity_class : 1.0;
    const double weighted = m.last_report.participants / cls;
    if (weighted > busiest_load) {
      busiest_load = weighted;
      busiest = i;
    }
    if (weighted < idlest_load) {
      idlest_load = weighted;
      idlest = i;
    }
  }
  if (busiest == SIZE_MAX || idlest == SIZE_MAX || busiest == idlest) return;
  if (busiest_load - idlest_load < rebalance_cfg_.imbalance_threshold) return;

  // Pick the smallest migratable meeting on the overloaded switch whose
  // move strictly shrinks the gap (so the pair cannot swap roles and
  // ping-pong), skipping meetings still in their post-move cooldown,
  // meetings mid-renegotiation (failover blackout / re-signal window —
  // their members are down and moving them again would strand the
  // re-joins), and cascaded meetings (their load is already spread by the
  // placement policy; collapsing them onto one switch would fight it).
  const util::TimeUs now = sched_->now();
  MeetingId pick = 0;
  int pick_size = std::numeric_limits<int>::max();
  for (MeetingId meeting : directory_->Ids()) {
    const MeetingState& st = *directory_->Find(meeting);
    if (st.placement.home != busiest) continue;
    if (st.placement.spans_switches()) continue;
    if (st.frozen) continue;
    if (st.migrated_once &&
        now - st.last_migrated < rebalance_cfg_.cooldown) {
      continue;
    }
    const int size = static_cast<int>(st.members.size());
    const double busiest_cls = switches_[busiest]->capacity_class > 0.0
                                   ? switches_[busiest]->capacity_class
                                   : 1.0;
    if (size <= 0 || size / busiest_cls >= busiest_load - idlest_load) {
      continue;
    }
    if (size < pick_size) {
      pick_size = size;
      pick = meeting;
    }
  }
  if (pick == 0) return;
  ++stats_.rebalance_migrations;
  const uint64_t prev_chain = active_chain_;
  if (trace_ != nullptr) {
    active_chain_ = trace_->NextCorrelation();
    Trace(obs::Category::kFleet, "rebalance.migrate", 0,
          TraceDetail("meeting=%u from=%zu to=%zu",
                      static_cast<unsigned>(pick), busiest, idlest));
  }
  MigrateMeeting(pick, idlest);
  active_chain_ = prev_chain;
}

size_t FleetController::LeastLoaded(size_t exclude) const {
  std::vector<size_t> excluded;
  if (exclude != SIZE_MAX) excluded.push_back(exclude);
  return LeastLoadedLive(Loads(), excluded);
}

std::vector<SwitchLoad> FleetController::Loads() const {
  std::vector<SwitchLoad> loads;
  loads.reserve(switches_.size());
  for (const auto& sw : switches_) {
    // Border guests are invisible to the placement policy (reported not
    // alive): only the border-span planner may target them.
    loads.push_back(SwitchLoad{sw->owned && sw->alive, sw->participants,
                               sw->meetings, sw->capacity_class});
  }
  return loads;
}

void FleetController::SetSwitchCapacity(size_t switch_index,
                                        double capacity_class) {
  if (switch_index >= switches_.size()) {
    throw std::out_of_range("FleetController: SetSwitchCapacity index");
  }
  if (capacity_class <= 0.0) {
    throw std::invalid_argument(
        "FleetController: capacity class must be positive");
  }
  switches_[switch_index]->capacity_class = capacity_class;
}

double FleetController::CapacityClassOf(size_t switch_index) const {
  const double cls = switches_[switch_index]->capacity_class;
  return cls > 0.0 ? cls : 1.0;
}

MeetingId FleetController::CreateMeeting() {
  if (dead_) {
    throw std::runtime_error("FleetController: controller is down");
  }
  size_t idx = policy_->PlaceMeeting(Loads());
  if (idx == SIZE_MAX) {
    throw std::runtime_error("FleetController: no live switch to place on");
  }
  MeetingId local = switches_[idx]->controller->CreateMeeting();
  MeetingId global = next_meeting_;
  next_meeting_ += meeting_stride_;
  MeetingState st;
  st.placement.home = idx;
  st.placement.local_meeting = local;
  directory_->Emplace(global, std::move(st));
  ++switches_[idx]->meetings;
  ++stats_.meetings_placed;
  if (trace_ != nullptr) {
    Trace(obs::Category::kPlacement, "placement.meeting_placed", 0,
          TraceDetail("meeting=%u switch=%zu", static_cast<unsigned>(global),
                      idx));
  }
  return global;
}

MeetingId FleetController::LocalMeetingOn(const MeetingState& st,
                                          size_t switch_index) const {
  if (switch_index == st.placement.home) return st.placement.local_meeting;
  const RelaySpan* span = st.placement.SpanOn(switch_index);
  if (span != nullptr) return span->local_meeting;
  // Interior secondary-tree hops live in protection meetings; after a
  // flip the relay's upstream may be such a switch.
  auto it = st.protection_meetings.find(switch_index);
  return it == st.protection_meetings.end() ? 0 : it->second;
}

ParticipantId FleetController::NextRelayId() { return next_relay_id_++; }

RelaySpan& FleetController::EnsureSpan(MeetingState& st,
                                       size_t switch_index) {
  for (RelaySpan& span : st.placement.spans) {
    if (span.switch_index == switch_index) return span;
  }
  // The policy parents the new span onto the tree (home by default —
  // hub-and-spoke; a topology-aware policy may hang it off another span).
  size_t parent = policy_->ChooseSpanParent(st.placement, switch_index);
  const bool parent_on_plan =
      parent == st.placement.home || st.placement.SpanOn(parent) != nullptr;
  if (!parent_on_plan || parent == switch_index) parent = st.placement.home;

  RelaySpan span;
  span.switch_index = switch_index;
  span.parent = parent == st.placement.home ? SIZE_MAX : parent;
  span.local_meeting = switches_[switch_index]->controller->CreateMeeting();
  st.placement.spans.push_back(std::move(span));
  ++switches_[switch_index]->meetings;
  ++stats_.relay_spans_installed;
  if (trace_ != nullptr) {
    Trace(obs::Category::kPlacement, "placement.span_installed", 0,
          TraceDetail("switch=%zu parent=%zu home=%zu", switch_index, parent,
                      st.placement.home));
  }

  // Route every existing sender's stream into the new span along the
  // relay tree, so its first member immediately sees the whole meeting.
  for (const auto& [pid, info] : st.members) {
    if (!info.intent.sends_video && !info.intent.sends_audio) continue;
    if (info.home_switch == switch_index) continue;
    EnsureSenderAt(st, pid, info.home_switch, switch_index, info.intent);
  }
  // Re-find: EnsureSenderAt never touches the span list, but keep the
  // lookup robust against future reordering.
  for (RelaySpan& s : st.placement.spans) {
    if (s.switch_index == switch_index) return s;
  }
  throw std::logic_error("EnsureSpan: span vanished during setup");
}

ParticipantId FleetController::SenderIdOn(const MeetingState& st,
                                          ParticipantId origin,
                                          size_t origin_switch,
                                          size_t switch_index) const {
  if (switch_index == origin_switch) return origin;
  for (const MeetingRelay& r : st.relays) {
    if (r.origin == origin && r.downstream == switch_index) {
      return r.relay_sender;
    }
  }
  return 0;
}

ParticipantId FleetController::EnsureSenderAt(MeetingState& st,
                                              ParticipantId origin,
                                              size_t origin_switch,
                                              size_t target_switch,
                                              const SenderIntent& intent) {
  const std::vector<size_t> path =
      st.placement.TreePath(origin_switch, target_switch);
  if (path.size() < 2) return origin;  // same switch (or off-plan)
  ParticipantId carried = origin;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Each hop forwards the stream under the id it is known by upstream:
    // the origin itself on its home switch, its relay sender elsewhere.
    ParticipantId known = SenderIdOn(st, origin, origin_switch, path[i]);
    carried = EnsureRelay(st, path[i], path[i + 1], origin,
                          known != 0 ? known : carried, intent);
  }
  return carried;
}

ParticipantId FleetController::EnsureRelay(MeetingState& st, size_t upstream,
                                           size_t downstream,
                                           ParticipantId origin,
                                           ParticipantId upstream_sender,
                                           const SenderIntent& origin_intent) {
  for (const MeetingRelay& r : st.relays) {
    if (r.origin == origin && r.downstream == downstream) {
      return r.relay_sender;
    }
  }
  Member& up = *switches_[upstream];
  Member& down = *switches_[downstream];

  MeetingRelay r;
  r.origin = origin;
  r.upstream = upstream;
  r.downstream = downstream;
  r.upstream_sender = upstream_sender;
  r.relay_receiver = NextRelayId();
  r.relay_sender = NextRelayId();
  r.video_ssrc = origin_intent.video_ssrc;
  r.audio_ssrc = origin_intent.audio_ssrc;
  r.sends_video = origin_intent.sends_video;
  r.sends_audio = origin_intent.sends_audio;

  // Ports are controller-assigned, which breaks the endpoint cycle: the
  // downstream switch must know where relayed media will arrive *from*
  // (the upstream relay leg), the upstream switch where to send it *to*
  // (the downstream relay uplink). Reserve the upstream port first, tell
  // the downstream switch, then install the upstream leg on the reserved
  // port.
  r.upstream_port = up.channel->AllocatePort();
  net::Endpoint upstream_src{up.sfu_ip, r.upstream_port};
  r.downstream_port = down.channel->AddRelaySender(
      LocalMeetingOn(st, downstream), r.relay_sender, upstream_src,
      r.video_ssrc, r.audio_ssrc, r.sends_video, r.sends_audio);
  up.channel->AddRelayLeg(LocalMeetingOn(st, upstream), r.relay_receiver,
                          upstream_sender,
                          net::Endpoint{down.sfu_ip, r.downstream_port},
                          r.upstream_port);

  // Register the hop's estimated stream load on every backbone link its
  // media physically crosses, so residual-capacity planning and the
  // overload re-planner see this relay.
  r.backbone_path = topology_.RelayPath(upstream, downstream);
  r.load_bps = relay_stream_bps_;
  topology_.AddLoad(r.backbone_path, r.load_bps);

  // Real members already homed downstream open receive legs toward the
  // relay sender, exactly as they would for a local joiner.
  for (const auto& [pid, info] : st.members) {
    if (info.home_switch != downstream || info.client == nullptr) continue;
    net::Endpoint local = info.client->AllocateLocalLeg(r.relay_sender);
    uint16_t port = down.channel->AddRecvLeg(LocalMeetingOn(st, downstream),
                                             pid, r.relay_sender, local);
    info.client->OnRemoteLegReady(r.relay_sender, r.video_ssrc, r.audio_ssrc,
                                  net::Endpoint{down.sfu_ip, port});
  }

  st.relays.push_back(r);
  return r.relay_sender;
}

void FleetController::RouteSenderEverywhere(MeetingState& st,
                                            ParticipantId origin,
                                            size_t origin_switch,
                                            const SenderIntent& origin_intent) {
  // Per hop along the relay tree: visiting targets in plan order (home,
  // then spans as created) while each chain reuses hops idempotently
  // yields exactly one relay copy per tree edge. On hub-and-spoke plans
  // this produces the same relays in the same order as the old
  // spoke->hub->spokes wiring, so cascades are byte-compatible.
  if (origin_switch != st.placement.home) {
    EnsureSenderAt(st, origin, origin_switch, st.placement.home,
                   origin_intent);
  }
  for (const RelaySpan& span : st.placement.spans) {
    if (span.switch_index == origin_switch) continue;
    EnsureSenderAt(st, origin, origin_switch, span.switch_index,
                   origin_intent);
  }
}

FleetController::JoinResult FleetController::Join(
    MeetingId meeting, const sdp::SessionDescription& offer,
    SignalingClient* client) {
  if (dead_) {
    throw std::runtime_error("FleetController: controller is down");
  }
  MeetingState* found = directory_->Find(meeting);
  if (found == nullptr) {
    throw std::out_of_range("FleetController: unknown meeting");
  }
  MeetingState& st = *found;
  size_t target = policy_->PlaceParticipant(st.placement, Loads());
  if (target >= switches_.size()) target = st.placement.home;

  // The policy falling back to an already-full home switch means it is
  // out of local capacity. Under a federation that overflow is worth a
  // cross-region border span: ask the plane for a guest switch to span
  // onto (the guest was registered via AddBorderSwitch and rides the
  // ordinary RelaySpan mechanics below). Standalone fleets have no
  // provider and behave exactly as before.
  if (target == st.placement.home && border_provider_ != nullptr) {
    const int budget = policy_->SpanBudget();
    if (budget > 0 &&
        static_cast<int>(st.placement.home_participants.size()) >= budget) {
      const size_t guest = border_provider_(meeting);
      if (guest < switches_.size() && guest != st.placement.home) {
        target = guest;
      }
    }
  }

  MeetingId local;
  if (target == st.placement.home) {
    local = st.placement.local_meeting;
  } else {
    local = EnsureSpan(st, target).local_meeting;
  }

  JoinResult result =
      switches_[target]->controller->Join(local, offer, client);
  ++switches_[target]->participants;

  MemberInfo info;
  info.home_switch = target;
  info.client = client;
  info.intent = ParseSenderIntent(offer);
  st.members[result.participant] = info;
  if (target == st.placement.home) {
    st.placement.home_participants.push_back(result.participant);
  } else {
    EnsureSpan(st, target).participants.push_back(result.participant);
  }

  // The switch-local Join negotiated legs toward local senders only; the
  // relay senders parked on this switch (remote participants' streams)
  // need their legs wired here.
  for (const MeetingRelay& r : st.relays) {
    if (r.downstream != target) continue;
    net::Endpoint leg_local = client->AllocateLocalLeg(r.relay_sender);
    uint16_t port = switches_[target]->channel->AddRecvLeg(
        local, result.participant, r.relay_sender, leg_local);
    client->OnRemoteLegReady(r.relay_sender, r.video_ssrc, r.audio_ssrc,
                             net::Endpoint{switches_[target]->sfu_ip, port});
  }

  // And this participant's own media must reach every other switch the
  // meeting spans.
  if (info.intent.sends_video || info.intent.sends_audio) {
    RouteSenderEverywhere(st, result.participant, target, info.intent);
  }

  // Every relay installed for (or discovered by) this join gets its
  // disjoint secondary tree while the wiring is still quiescent — the
  // decode-target pins land before any estimate could adapt a leg and
  // fork the two trees' sequence numbering.
  EnsureProtection(st);

  // A member (re-)joined: the meeting is out of its renegotiation window.
  st.frozen = false;
  return result;
}

void FleetController::UnregisterRelayLoad(const MeetingRelay& relay) {
  topology_.RemoveLoad(relay.backbone_path, relay.load_bps);
}

void FleetController::RemoveSenderRelays(MeetingState& st,
                                         ParticipantId origin) {
  // Protection first: the terminal RemoveRelaySource must apply while the
  // protected relay sender still exists downstream.
  for (auto it = st.secondaries.begin(); it != st.secondaries.end();) {
    if (it->origin == origin) {
      TearDownSecondary(st, *it, SIZE_MAX);
      it = st.secondaries.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = st.relays.begin(); it != st.relays.end();) {
    if (it->origin != origin) {
      ++it;
      continue;
    }
    const MeetingRelay r = *it;
    UnregisterRelayLoad(r);
    // Downstream members learn the relayed sender left (their switch's
    // controller never knew it, so the fleet delivers the notification).
    for (const auto& [pid, info] : st.members) {
      if (info.home_switch == r.downstream && info.client != nullptr) {
        info.client->OnRemoteSenderLeft(r.relay_sender);
      }
    }
    switches_[r.downstream]->channel->RemoveParticipant(
        LocalMeetingOn(st, r.downstream), r.relay_sender);
    switches_[r.upstream]->channel->RemoveParticipant(
        LocalMeetingOn(st, r.upstream), r.relay_receiver);
    it = st.relays.erase(it);
  }
  GcProtectionMeetings(st);
}

void FleetController::EraseParticipantFromPlacement(MeetingState& st,
                                                    ParticipantId p) {
  auto& hp = st.placement.home_participants;
  hp.erase(std::remove(hp.begin(), hp.end(), p), hp.end());
  for (RelaySpan& span : st.placement.spans) {
    auto& sp = span.participants;
    sp.erase(std::remove(sp.begin(), sp.end(), p), sp.end());
  }
}

void FleetController::Leave(MeetingId meeting, ParticipantId participant) {
  if (dead_) return;  // the crashed controller can no longer sign anyone out
  MeetingState* found = directory_->Find(meeting);
  if (found == nullptr) return;
  MeetingState& st = *found;
  // Membership guard: a participant who never joined (or already left —
  // e.g. dropped by a switch failure before its scheduled leave fired)
  // must not decrement the hosting switch's load.
  auto mit = st.members.find(participant);
  if (mit == st.members.end()) return;
  const size_t at = mit->second.home_switch;

  // Tear the leaver's relay spans' wiring down first, so remote members
  // drop their legs toward the relayed stream before any state vanishes.
  RemoveSenderRelays(st, participant);

  --switches_[at]->participants;
  switches_[at]->controller->Leave(LocalMeetingOn(st, at), participant);
  EraseParticipantFromPlacement(st, participant);
  st.members.erase(mit);

  // Span garbage collection: a span whose last member left is drained —
  // its relay plumbing and switch-local meeting go away, and the span
  // disappears from the placement. An interior span with child spans
  // still hanging off it stays: it is a live relay hop for its subtree
  // even with no local members. Draining a leaf may leave its memberless
  // parent childless, so the drain cascades up the tree.
  size_t drain = at;
  while (drain != st.placement.home && drain != SIZE_MAX) {
    const RelaySpan* span = st.placement.SpanOn(drain);
    if (span == nullptr || !span->participants.empty() ||
        st.placement.HasChildSpans(drain)) {
      break;
    }
    const size_t parent = st.placement.ParentOf(drain);
    TearDownSpan(st, drain, /*switch_dead=*/false);
    drain = parent;
  }
}

void FleetController::TearDownSpan(MeetingState& st, size_t switch_index,
                                   bool switch_dead) {
  const RelaySpan* span = st.placement.SpanOn(switch_index);
  if (span == nullptr) return;

  // Child spans reach the rest of the meeting through this one: collapse
  // the whole subtree first (their switches are alive — only their relay
  // path died — so their teardown commands still apply).
  for (bool had_child = true; had_child;) {
    had_child = false;
    for (const RelaySpan& s : st.placement.spans) {
      size_t parent = s.parent == SIZE_MAX ? st.placement.home : s.parent;
      if (parent == switch_index) {
        TearDownSpan(st, s.switch_index, /*switch_dead=*/false);
        had_child = true;
        break;  // the span list mutated; rescan
      }
    }
  }
  span = st.placement.SpanOn(switch_index);
  if (span == nullptr) return;
  const MeetingId local = span->local_meeting;

  // Span members' clients must drop their legs toward the relayed
  // senders parked on the span: the span's controller never knew those
  // senders, so the fleet delivers the notification (mirroring the
  // downstream-member loop below for every other switch). On forced
  // collapses the sessions are already dead and the notification is a
  // no-op on the client.
  std::vector<ParticipantId> dropped = span->participants;
  for (const MeetingRelay& r : st.relays) {
    if (r.downstream != switch_index) continue;
    for (ParticipantId p : dropped) {
      auto mit = st.members.find(p);
      if (mit != st.members.end() && mit->second.client != nullptr) {
        mit->second.client->OnRemoteSenderLeft(r.relay_sender);
      }
    }
  }
  // Members still homed on the span (switch failure / forced collapse /
  // meeting end): drain their load and membership. Their relay wiring is
  // removed with the span's relays below.
  for (ParticipantId p : dropped) {
    --switches_[switch_index]->participants;
    st.members.erase(p);
  }

  // Remove every relay touching the span: toward it (downstream == span),
  // from it (origin homed on the span — including second-hop fan-out of
  // those origins via the home switch).
  auto origin_on_span = [&](ParticipantId origin) {
    return std::find(dropped.begin(), dropped.end(), origin) != dropped.end();
  };
  // Secondary trees routing through the span's switch (endpoints are on
  // the path too) or protecting a relay that dies with the span go first,
  // while the relay state their teardown commands touch still exists.
  for (auto sit = st.secondaries.begin(); sit != st.secondaries.end();) {
    const bool touches =
        std::find(sit->path.begin(), sit->path.end(), switch_index) !=
            sit->path.end() ||
        origin_on_span(sit->origin);
    if (touches) {
      TearDownSecondary(st, *sit, switch_dead ? switch_index : SIZE_MAX);
      sit = st.secondaries.erase(sit);
    } else {
      ++sit;
    }
  }
  std::map<size_t, std::vector<ParticipantId>> removals;  // per switch
  for (auto rit = st.relays.begin(); rit != st.relays.end();) {
    const MeetingRelay& r = *rit;
    if (r.downstream != switch_index && r.upstream != switch_index &&
        !origin_on_span(r.origin)) {
      ++rit;
      continue;
    }
    UnregisterRelayLoad(r);
    if (r.downstream == switch_index) {
      // The span-side relay sender dies with the span's meeting; only the
      // upstream pseudo-receiver needs an explicit removal.
      removals[r.upstream].push_back(r.relay_receiver);
    } else {
      for (const auto& [pid, info] : st.members) {
        if (info.home_switch == r.downstream && info.client != nullptr) {
          info.client->OnRemoteSenderLeft(r.relay_sender);
        }
      }
      removals[r.downstream].push_back(r.relay_sender);
      removals[r.upstream].push_back(r.relay_receiver);
    }
    rit = st.relays.erase(rit);
  }
  for (auto& [sw, ids] : removals) {
    if (sw == switch_index && switch_dead) continue;  // state died with it
    switches_[sw]->channel->RemoveRelaySpan(LocalMeetingOn(st, sw), ids);
  }
  // Now that every relay-removal command referencing them is dispatched,
  // drained protection meetings can go.
  GcProtectionMeetings(st);

  // End the span-local meeting: the controller notifies any members it
  // still tracks, and RemoveMeeting clears remaining agent state
  // (including the span's relay senders).
  switches_[switch_index]->controller->EndMeeting(local);
  --switches_[switch_index]->meetings;
  auto& spans = st.placement.spans;
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [&](const RelaySpan& s) {
                               return s.switch_index == switch_index;
                             }),
              spans.end());
  ++stats_.relay_spans_removed;
}

// ---- redundant dual relay trees ---------------------------------------------

SecondaryTree* FleetController::SecondaryOf(MeetingState& st,
                                            const MeetingRelay& r) {
  for (SecondaryTree& t : st.secondaries) {
    if (!t.active && t.origin == r.origin && t.upstream == r.upstream &&
        t.downstream == r.downstream) {
      return &t;
    }
  }
  return nullptr;
}

SecondaryTree* FleetController::ActiveOf(MeetingState& st,
                                         const MeetingRelay& r) {
  for (SecondaryTree& t : st.secondaries) {
    if (t.active && t.origin == r.origin && t.upstream == r.upstream &&
        t.downstream == r.downstream) {
      return &t;
    }
  }
  return nullptr;
}

const std::vector<size_t>& FleetController::CurrentRelayPath(
    const MeetingState& st, const MeetingRelay& r) const {
  for (const SecondaryTree& t : st.secondaries) {
    if (t.active && t.origin == r.origin && t.upstream == r.upstream &&
        t.downstream == r.downstream) {
      return t.path;
    }
  }
  return r.backbone_path;
}

MeetingId FleetController::ProtectionMeetingOn(MeetingState& st,
                                               size_t switch_index) {
  auto it = st.protection_meetings.find(switch_index);
  if (it != st.protection_meetings.end()) return it->second;
  MeetingId local = switches_[switch_index]->controller->CreateMeeting();
  ++switches_[switch_index]->meetings;
  st.protection_meetings[switch_index] = local;
  return local;
}

void FleetController::GcProtectionMeetings(MeetingState& st) {
  for (auto it = st.protection_meetings.begin();
       it != st.protection_meetings.end();) {
    const size_t sw = it->first;
    bool used = false;
    for (const SecondaryTree& t : st.secondaries) {
      for (size_t i = 1; !used && i + 1 < t.path.size(); ++i) {
        used = t.path[i] == sw;
      }
    }
    if (used) {
      ++it;
      continue;
    }
    if (switches_[sw]->alive) {
      switches_[sw]->controller->EndMeeting(it->second);
    }
    --switches_[sw]->meetings;
    it = st.protection_meetings.erase(it);
  }
}

void FleetController::EnsureProtection(MeetingState& st) {
  if (!redundancy_.redundant_trees) return;
  // An implicit full mesh has no declared links to be disjoint from (and
  // no physical backbone routes for the chain to diverge over).
  if (!topology_.explicit_topology()) return;
  for (MeetingRelay& r : st.relays) {
    if (SecondaryOf(st, r) != nullptr) continue;
    PlanSecondary(st, r);
  }
}

void FleetController::PlanSecondary(MeetingState& st, MeetingRelay& r) {
  if (!redundancy_.redundant_trees || !topology_.explicit_topology()) return;
  // Be disjoint from the relay's *current* transport — its own backbone
  // path, or the promoted chain's if a flip already happened.
  const std::vector<size_t>& current = CurrentRelayPath(st, r);
  std::vector<std::pair<size_t, size_t>> avoid;
  for (size_t i = 0; i + 1 < current.size(); ++i) {
    avoid.emplace_back(current[i], current[i + 1]);
  }
  const std::vector<size_t> path = topology_.DisjointPath(
      r.upstream, r.downstream, avoid, relay_stream_bps_);
  // No useful secondary: unreachable, or the "disjoint" path is the
  // current transport itself (a bridge link with no way around it).
  if (path.size() < 2 || path == current) return;
  for (size_t i = 0; i < path.size(); ++i) {
    const size_t sw = path[i];
    if (sw >= switches_.size()) return;
    const Member& m = *switches_[sw];
    if (!m.alive || m.channel == nullptr) return;
    // Interior hops park state in switch-local protection meetings, which
    // needs the switch's own controller — not a borrowed border guest's.
    if (i > 0 && i + 1 < path.size() && !m.owned) return;
  }

  SecondaryTree t;
  t.origin = r.origin;
  t.upstream = r.upstream;
  t.downstream = r.downstream;
  t.protected_relay = r.relay_sender;
  t.path = path;
  t.load_bps = relay_stream_bps_;

  ParticipantId carried = r.upstream_sender;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const size_t a = path[i], b = path[i + 1];
    Member& up = *switches_[a];
    Member& down = *switches_[b];
    ProtectionHop h;
    h.upstream = a;
    h.downstream = b;
    h.sender_on_upstream = carried;
    h.relay_receiver = NextRelayId();
    h.upstream_port = up.channel->AllocatePort();
    const net::Endpoint src{up.sfu_ip, h.upstream_port};
    const MeetingId lm_a =
        i == 0 ? LocalMeetingOn(st, a) : ProtectionMeetingOn(st, a);
    if (b == r.downstream) {
      // Terminal hop: merge into the primary relay sender behind its
      // (origin, seq) dedup window instead of minting a second sender.
      h.terminal = true;
      h.relay_sender = r.relay_sender;
      h.downstream_port = r.downstream_port;
      down.channel->AddRelaySource(LocalMeetingOn(st, b), r.relay_sender,
                                   src, redundancy_.dedup_window);
    } else {
      h.relay_sender = NextRelayId();
      h.downstream_port = down.channel->AddRelaySender(
          ProtectionMeetingOn(st, b), h.relay_sender, src, r.video_ssrc,
          r.audio_ssrc, r.sends_video, r.sends_audio);
    }
    up.channel->AddRelayLeg(lm_a, h.relay_receiver, h.sender_on_upstream,
                            net::Endpoint{down.sfu_ip, h.downstream_port},
                            h.upstream_port);
    // Dedup keys on (ssrc, seq), so both trees must carry the *same*
    // numbering: pin every chain leg to full quality — an adapted leg
    // would rewrite its copy onto a different sequence line.
    up.channel->ForceDecodeTarget(lm_a, h.relay_receiver,
                                  h.sender_on_upstream, 2);
    carried = h.relay_sender;
    t.hops.push_back(h);
  }
  // The primary's own forwarding leg gets the same pin, for the same
  // reason; it was created in this scheduler instant, so no estimate has
  // adapted it yet and both trees start on identical numbering.
  switches_[r.upstream]->channel->ForceDecodeTarget(
      LocalMeetingOn(st, r.upstream), r.relay_receiver, r.upstream_sender, 2);

  // Both trees' load rides the backbone for as long as the protection
  // stands — residual-capacity planning must see the doubled footprint.
  topology_.AddLoad(t.path, t.load_bps);
  if (trace_ != nullptr) {
    Trace(obs::Category::kRedundancy, "redundancy.secondary_planned", 0,
          TraceDetail("origin=%u edge=%zu-%zu hops=%zu",
                      static_cast<unsigned>(t.origin), t.upstream,
                      t.downstream, t.hops.size()));
  }
  st.secondaries.push_back(std::move(t));
  ++stats_.secondary_trees_installed;
}

void FleetController::FlipRelay(MeetingState& st, MeetingRelay& r,
                                SecondaryTree& tree) {
  const ProtectionHop& term = tree.hops.back();
  const net::Endpoint new_src{switches_[term.upstream]->sfu_ip,
                              term.upstream_port};
  // Promote at the merge point: the secondary source becomes the relay
  // sender's primary (the data plane forwarded first-arrivals from either
  // tree all along, so receivers never see a seam).
  switches_[r.downstream]->channel->PromoteRelaySource(
      LocalMeetingOn(st, r.downstream), r.relay_sender, new_src);
  // Drain the old transport. The relay record keeps its logical identity
  // (the tree edge, its ids, the merge-point sender) — only the physical
  // feed changes — so span bookkeeping and relay idempotence are
  // untouched by any number of flips.
  SecondaryTree* old = ActiveOf(st, r);
  tree.active = true;  // before any erase below invalidates the reference
  ++stats_.tree_flips;
  if (trace_ != nullptr) {
    Trace(obs::Category::kRedundancy, "redundancy.tree_flip", 0,
          TraceDetail("origin=%u edge=%zu-%zu",
                      static_cast<unsigned>(r.origin), r.upstream,
                      r.downstream));
  }
  if (old != nullptr) {
    // Second flip: the outgoing transport is itself a chain. Demote it to
    // a plain standby and tear it down like one.
    SecondaryTree retired = *old;
    retired.active = false;
    st.secondaries.erase(st.secondaries.begin() +
                         (old - st.secondaries.data()));
    TearDownSecondary(st, retired, SIZE_MAX);
    GcProtectionMeetings(st);
  } else {
    // First flip: the outgoing transport is the relay's own leg.
    if (switches_[r.upstream]->alive) {
      switches_[r.upstream]->channel->RemoveParticipant(
          LocalMeetingOn(st, r.upstream), r.relay_receiver);
    }
    UnregisterRelayLoad(r);
    // The old leg is gone; the relay no longer carries a physical path of
    // its own (UnregisterRelayLoad and shard adoption both become no-ops
    // for it — the chain's load is accounted on the chain).
    r.backbone_path.clear();
    r.load_bps = 0.0;
  }
}

void FleetController::TearDownSecondary(MeetingState& st,
                                        const SecondaryTree& tree,
                                        size_t dead_switch) {
  for (size_t i = 0; i < tree.hops.size(); ++i) {
    const ProtectionHop& h = tree.hops[i];
    if (h.terminal) {
      // An active (promoted) chain's terminal source IS the relay
      // sender's primary feed now; it dies with the relay sender itself,
      // not as a detachable secondary source.
      if (!tree.active && h.downstream != dead_switch &&
          switches_[h.downstream]->alive) {
        switches_[h.downstream]->channel->RemoveRelaySource(
            LocalMeetingOn(st, h.downstream), h.relay_sender,
            net::Endpoint{switches_[h.upstream]->sfu_ip, h.upstream_port});
      }
    } else if (h.downstream != dead_switch && switches_[h.downstream]->alive) {
      // Interior senders live in the switch's protection meeting, even
      // when that switch also hosts a span of the plan.
      switches_[h.downstream]->channel->RemoveParticipant(
          ProtectionMeetingOn(st, h.downstream), h.relay_sender);
    }
    if (h.upstream != dead_switch && switches_[h.upstream]->alive) {
      const MeetingId lm = i == 0 ? LocalMeetingOn(st, h.upstream)
                                  : ProtectionMeetingOn(st, h.upstream);
      switches_[h.upstream]->channel->RemoveParticipant(lm, h.relay_receiver);
    }
  }
  topology_.RemoveLoad(tree.path, tree.load_bps);
  ++stats_.secondary_trees_removed;
}

void FleetController::HitlessMigrate(MeetingState& st, MeetingId meeting,
                                     size_t target) {
  const size_t source = st.placement.home;
  // Make: open the span on the target and start relaying every sender's
  // stream into it. Nothing has moved yet; members' sessions are intact.
  RelaySpan& made = EnsureSpan(st, target);
  const MeetingId target_local = made.local_meeting;
  std::vector<ParticipantId> target_members = std::move(made.participants);
  // Flip: re-root the plan at the target. The old home becomes a
  // member-carrying span hanging off the new home — every leg, session
  // and relay keeps working because the tree edge between the two
  // switches is the one EnsureSpan just built.
  RelaySpan old_home;
  old_home.switch_index = source;
  old_home.parent = SIZE_MAX;  // child of the new home
  old_home.local_meeting = st.placement.local_meeting;
  old_home.participants = std::move(st.placement.home_participants);
  auto& spans = st.placement.spans;
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [&](const RelaySpan& s) {
                               return s.switch_index == target;
                             }),
              spans.end());
  spans.push_back(std::move(old_home));
  st.placement.home = target;
  st.placement.local_meeting = target_local;
  st.placement.home_participants = std::move(target_members);
  st.migrated_once = true;
  st.last_migrated = sched_ != nullptr ? sched_->now() : 0;
  // Drain: nothing to tear down now — the old home's span drains through
  // the ordinary Leave cascade as its members churn away. Members never
  // re-signal, so the meeting is not frozen and no migration callback
  // (which would drop sessions) fires.
  ++stats_.hitless_migrations;
  ++stats_.placements_rebalanced;
  if (trace_ != nullptr) {
    Trace(obs::Category::kRedundancy, "redundancy.hitless_migrate", 0,
          TraceDetail("meeting=%u from=%zu to=%zu",
                      static_cast<unsigned>(meeting), source, target));
  }
  EnsureProtection(st);
  if (hitless_cb_) hitless_cb_(meeting, source, target);
}

void FleetController::EndMeeting(MeetingId meeting) {
  MeetingState* found = directory_->Find(meeting);
  if (found == nullptr) return;
  MeetingState& st = *found;

  // Collapse the spans first: span members are notified through their
  // switch-local controllers, and relay teardown tells everyone else
  // their relayed senders are gone.
  while (!st.placement.spans.empty()) {
    TearDownSpan(st, st.placement.spans.back().switch_index,
                 /*switch_dead=*/false);
  }
  // Span teardown drains all protection state with the relays it covers;
  // sweep whatever is left so the protection meetings end with the
  // meeting.
  while (!st.secondaries.empty()) {
    TearDownSecondary(st, st.secondaries.back(), SIZE_MAX);
    st.secondaries.pop_back();
  }
  GcProtectionMeetings(st);

  Member& sw = *switches_[st.placement.home];
  // Drain members still joined at meeting end so the freed switch
  // actually looks free to placement.
  sw.participants -= static_cast<int>(st.members.size());
  --sw.meetings;
  sw.controller->EndMeeting(st.placement.local_meeting);
  directory_->Erase(meeting);
}

void FleetController::MigrateMeeting(MeetingId meeting, size_t target_switch) {
  MeetingState* found = directory_->Find(meeting);
  if (found == nullptr) return;
  MeetingState& st = *found;
  if (st.placement.home == target_switch && !st.placement.spans_switches()) {
    return;
  }
  const size_t source_switch = st.placement.home;
  if (trace_ != nullptr) {
    Trace(obs::Category::kFleet, "meeting.migrate", 0,
          TraceDetail("meeting=%u from=%zu to=%zu",
                      static_cast<unsigned>(meeting), source_switch,
                      target_switch));
  }
  // Planned moves go make-before-break when hitless migration is on: the
  // target span is built and relaying before anything flips, and no
  // member ever re-signals. Forced moves (the source switch is dead, or
  // the meeting already spans and must collapse) stay classic.
  if (redundancy_.hitless_migration && !st.placement.spans_switches() &&
      target_switch < switches_.size() && IsAlive(source_switch) &&
      IsAlive(target_switch) && switches_[target_switch]->owned) {
    HitlessMigrate(st, meeting, target_switch);
    return;
  }
  // Let the substrate/harness drop the members' sessions first (they must
  // re-signal onto the target); anything still joined afterwards is
  // drained below.
  if (migration_cb_) migration_cb_(meeting, source_switch, target_switch);

  // The migration collapses the meeting to a single fresh home; if it was
  // cascaded, the spans go too — the policy re-plans them as members
  // re-join.
  while (!st.placement.spans.empty()) {
    TearDownSpan(st, st.placement.spans.back().switch_index,
                 /*switch_dead=*/false);
  }

  // The old switch-local meeting is over (state wiped by the restart, or
  // torn down on a live source); current members' sessions go with it —
  // they re-Join and land on the target.
  Member& from = *switches_[st.placement.home];
  from.participants -= static_cast<int>(st.members.size());
  st.members.clear();
  st.placement.home_participants.clear();
  from.controller->EndMeeting(st.placement.local_meeting);
  --from.meetings;

  Member& to = *switches_[target_switch];
  MeetingId local = to.controller->CreateMeeting();
  ++to.meetings;
  st.placement.home = target_switch;
  st.placement.local_meeting = local;
  st.migrated_once = true;
  st.last_migrated = sched_ != nullptr ? sched_->now() : 0;
  // Members are down until they re-signal: the rebalancer keeps its hands
  // off until the first re-Join.
  st.frozen = true;
  ++stats_.placements_rebalanced;
}

void FleetController::OnSwitchDown(size_t switch_index) {
  Member& m = *switches_[switch_index];
  if (!m.alive) return;  // already declared dead: migrate exactly once
  m.alive = false;
  std::vector<MeetingId> homed, spanned;
  for (MeetingId meeting : directory_->Ids()) {
    const MeetingState& st = *directory_->Find(meeting);
    if (st.placement.home == switch_index) {
      homed.push_back(meeting);
    } else if (st.placement.SpanOn(switch_index) != nullptr) {
      spanned.push_back(meeting);
    }
  }
  if (trace_ != nullptr) {
    Trace(obs::Category::kFleet, "switch.down", 0,
          TraceDetail("switch=%zu homed=%zu spanned=%zu", switch_index,
                      homed.size(), spanned.size()));
  }
  for (MeetingId meeting : homed) {
    size_t standby = LeastLoaded(switch_index);
    // With no live standby the meeting stays put and recovers only when
    // the switch itself is revived (single-switch fleets behave like the
    // plain Scallop testbed's restart failover).
    if (standby == SIZE_MAX) continue;
    MigrateMeeting(meeting, standby);
  }
  for (MeetingId meeting : spanned) {
    // Only a span died: the home (hub) survives, so collapse the span and
    // let its members re-join — the policy re-plans them onto live
    // switches.
    MeetingState& st = *directory_->Find(meeting);
    if (trace_ != nullptr) {
      Trace(obs::Category::kFleet, "span.collapsed", 0,
            TraceDetail("meeting=%u switch=%zu",
                        static_cast<unsigned>(meeting), switch_index));
    }
    if (migration_cb_) {
      migration_cb_(meeting, switch_index, st.placement.home);
    }
    TearDownSpan(st, switch_index, /*switch_dead=*/true);
    st.frozen = true;
  }
  if (!redundancy_.enabled()) return;
  // Instant fallback: relays whose current transport merely *transits*
  // the dead switch (both endpoints survive) flip onto a standby chain
  // that avoids it — the chain was already delivering duplicate copies,
  // so receivers never see a gap. Standby chains the dead switch was
  // part of are gone; drop their surviving wiring quietly.
  for (MeetingId meeting : directory_->Ids()) {
    MeetingState& st = *directory_->Find(meeting);
    for (MeetingRelay& r : st.relays) {
      if (r.upstream == switch_index || r.downstream == switch_index) {
        continue;  // the classic span handling owned this relay's fate
      }
      const std::vector<size_t>& cur = CurrentRelayPath(st, r);
      bool transits = false;
      for (size_t i = 1; i + 1 < cur.size(); ++i) {
        transits = transits || cur[i] == switch_index;
      }
      if (!transits) continue;
      SecondaryTree* t = SecondaryOf(st, r);
      if (t == nullptr) continue;
      bool avoids = true;
      for (size_t sw : t->path) avoids = avoids && sw != switch_index;
      if (!avoids) continue;
      FlipRelay(st, r, *t);
      PlanSecondary(st, r);  // declines when the death left no disjoint path
    }
    for (auto it = st.secondaries.begin(); it != st.secondaries.end();) {
      bool broken = false;
      if (!it->active) {
        for (size_t sw : it->path) broken = broken || sw == switch_index;
      }
      if (!broken) {
        ++it;
        continue;
      }
      const SecondaryTree retired = *it;
      it = st.secondaries.erase(it);
      TearDownSecondary(st, retired, switch_index);
    }
    GcProtectionMeetings(st);
  }
}

void FleetController::ReviveSwitch(size_t switch_index) {
  Member& m = *switches_[switch_index];
  m.alive = true;
  // Restart the liveness clock: the grace period before fresh heartbeats
  // arrive must not count as misses and instantly re-kill the switch.
  if (sched_ != nullptr) m.last_heartbeat = sched_->now();
}

bool FleetController::IsAlive(size_t switch_index) const {
  return switches_[switch_index]->alive;
}

MeetingPlacement FleetController::PlacementOf(MeetingId meeting) const {
  const MeetingRecord* rec = directory_->Find(meeting);
  return rec == nullptr ? MeetingPlacement{} : rec->placement;
}

std::pair<size_t, MeetingId> FleetController::PlacementDetail(
    MeetingId meeting) const {
  const MeetingRecord* rec = directory_->Find(meeting);
  if (rec == nullptr) return {SIZE_MAX, 0};
  return {rec->placement.home, rec->placement.local_meeting};
}

std::vector<FleetController::MeetingRelay> FleetController::RelaysOf(
    MeetingId meeting) const {
  const MeetingRecord* rec = directory_->Find(meeting);
  return rec == nullptr ? std::vector<MeetingRelay>{} : rec->relays;
}

std::vector<SecondaryTree> FleetController::SecondariesOf(
    MeetingId meeting) const {
  const MeetingRecord* rec = directory_->Find(meeting);
  return rec == nullptr ? std::vector<SecondaryTree>{} : rec->secondaries;
}

int FleetController::LoadOf(size_t switch_index) const {
  return switches_[switch_index]->participants;
}

int FleetController::MeetingsOn(size_t switch_index) const {
  return switches_[switch_index]->meetings;
}

net::Ipv4 FleetController::SfuIpOf(size_t switch_index) const {
  return switches_[switch_index]->sfu_ip;
}

bool FleetController::IsMember(MeetingId meeting,
                               ParticipantId participant) const {
  const MeetingRecord* rec = directory_->Find(meeting);
  return rec != nullptr && rec->members.count(participant) > 0;
}

const SwitchLoadReport& FleetController::ReportedLoadOf(
    size_t switch_index) const {
  return switches_[switch_index]->last_report;
}

}  // namespace scallop::core
