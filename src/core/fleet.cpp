#include "core/fleet.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace scallop::core {

size_t FleetController::AddSwitch(ControlChannel& channel, net::Ipv4 sfu_ip) {
  auto member = std::make_unique<Member>();
  // Disjoint participant-id range per switch: without it, two switch
  // controllers both counting from 1 could hand out the same id, and a
  // stale Leave for a participant migrated off one switch would pass the
  // membership guard and kick a live, unrelated member on another.
  constexpr ParticipantId kIdStride = 1'000'000;
  member->channel = &channel;
  member->controller = std::make_unique<Controller>(
      channel, sfu_ip,
      static_cast<ParticipantId>(switches_.size()) * kIdStride + 1);
  member->sfu_ip = sfu_ip;
  if (sched_ == nullptr) sched_ = &channel.sched();
  member->last_heartbeat = sched_->now();
  switches_.push_back(std::move(member));
  const size_t index = switches_.size() - 1;
  channel.Subscribe(this, index);
  if (detector_task_ == nullptr && channel.config().heartbeat_interval > 0) {
    detector_task_ = std::make_unique<sim::PeriodicTask>(
        *sched_, channel.config().heartbeat_interval, [this] {
          CheckHeartbeats();
          return true;
        });
  }
  return index;
}

void FleetController::OnHeartbeat(size_t switch_index) {
  ++stats_.heartbeats_seen;
  switches_[switch_index]->last_heartbeat = sched_->now();
}

void FleetController::OnLoadReport(size_t switch_index,
                                   const SwitchLoadReport& report) {
  ++stats_.load_reports_seen;
  Member& m = *switches_[switch_index];
  m.last_report = report;
  m.report_seen = true;
  m.last_heartbeat = sched_->now();  // a load report proves liveness too
}

void FleetController::CheckHeartbeats() {
  for (size_t i = 0; i < switches_.size(); ++i) {
    Member& m = *switches_[i];
    if (!m.alive || m.channel == nullptr) continue;
    const util::DurationUs interval = m.channel->config().heartbeat_interval;
    if (interval <= 0) continue;
    // The detector is calibrated to the channel: a heartbeat is only late
    // once its one-way delivery latency has passed too. Without this, any
    // configured control latency above two intervals would falsely kill
    // every switch at startup (and after every revive), before its first
    // heartbeat could possibly arrive.
    const util::DurationUs latency = m.channel->config().latency;
    const util::DurationUs gap = sched_->now() - m.last_heartbeat;
    if (gap < 2 * interval + latency) continue;  // one interval late: fine
    ++stats_.heartbeats_missed;
    if (gap >= kHeartbeatMissThreshold * interval + latency) {
      ++stats_.switches_failed;
      OnSwitchDown(i);
    }
  }
}

void FleetController::EnableRebalancer(const RebalanceConfig& cfg) {
  if (sched_ == nullptr) {
    throw std::logic_error(
        "FleetController: EnableRebalancer needs a registered switch");
  }
  rebalance_cfg_ = cfg;
  rebalance_cfg_.enabled = true;
  if (rebalance_cfg_.cooldown <= 0) {
    rebalance_cfg_.cooldown = rebalance_cfg_.interval;
  }
  rebalance_task_ = std::make_unique<sim::PeriodicTask>(
      *sched_, rebalance_cfg_.interval, [this] {
        Rebalance();
        return true;
      });
}

void FleetController::Rebalance() {
  // Decisions run on the *reported* load — what the northbound telemetry
  // says — not on the fleet's own bookkeeping; a switch that never
  // reported (or is dead) does not participate.
  size_t busiest = SIZE_MAX, idlest = SIZE_MAX;
  int busiest_load = -1, idlest_load = std::numeric_limits<int>::max();
  for (size_t i = 0; i < switches_.size(); ++i) {
    const Member& m = *switches_[i];
    if (!m.alive || !m.report_seen) continue;
    if (m.last_report.participants > busiest_load) {
      busiest_load = m.last_report.participants;
      busiest = i;
    }
    if (m.last_report.participants < idlest_load) {
      idlest_load = m.last_report.participants;
      idlest = i;
    }
  }
  if (busiest == SIZE_MAX || idlest == SIZE_MAX || busiest == idlest) return;
  if (busiest_load - idlest_load < rebalance_cfg_.imbalance_threshold) return;

  // Pick the smallest migratable meeting on the overloaded switch whose
  // move strictly shrinks the gap (so the pair cannot swap roles and
  // ping-pong), skipping meetings still in their post-move cooldown.
  const util::TimeUs now = sched_->now();
  MeetingId pick = 0;
  int pick_size = std::numeric_limits<int>::max();
  for (const auto& [meeting, place] : placement_) {
    if (place.first != busiest) continue;
    auto cooled = last_migrated_.find(meeting);
    if (cooled != last_migrated_.end() &&
        now - cooled->second < rebalance_cfg_.cooldown) {
      continue;
    }
    auto mit = members_.find(meeting);
    const int size =
        mit == members_.end() ? 0 : static_cast<int>(mit->second.size());
    if (size <= 0 || size >= busiest_load - idlest_load) continue;
    if (size < pick_size) {
      pick_size = size;
      pick = meeting;
    }
  }
  if (pick == 0) return;
  ++stats_.rebalance_migrations;
  MigrateMeeting(pick, idlest);
}

size_t FleetController::LeastLoaded(size_t exclude) const {
  size_t best = SIZE_MAX;
  int best_load = std::numeric_limits<int>::max();
  for (size_t i = 0; i < switches_.size(); ++i) {
    if (i == exclude || !switches_[i]->alive) continue;
    // Participants dominate load (streams scale with them); meetings break
    // ties so empty switches fill round-robin.
    int load = switches_[i]->participants * 64 + switches_[i]->meetings;
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

MeetingId FleetController::CreateMeeting() {
  size_t idx = LeastLoaded();
  if (idx == SIZE_MAX) {
    throw std::runtime_error("FleetController: no live switch to place on");
  }
  MeetingId local = switches_[idx]->controller->CreateMeeting();
  MeetingId global = next_meeting_++;
  placement_[global] = {idx, local};
  ++switches_[idx]->meetings;
  ++stats_.meetings_placed;
  return global;
}

FleetController::JoinResult FleetController::Join(
    MeetingId meeting, const sdp::SessionDescription& offer,
    SignalingClient* client) {
  auto place = placement_.at(meeting);
  JoinResult result =
      switches_[place.first]->controller->Join(place.second, offer, client);
  members_[meeting].insert(result.participant);
  ++switches_[place.first]->participants;
  return result;
}

void FleetController::Leave(MeetingId meeting, ParticipantId participant) {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return;
  auto mit = members_.find(meeting);
  // Membership guard: a participant who never joined (or already left —
  // e.g. dropped by a switch failure before its scheduled leave fired)
  // must not decrement the hosting switch's load.
  if (mit == members_.end() || mit->second.erase(participant) == 0) return;
  --switches_[it->second.first]->participants;
  switches_[it->second.first]->controller->Leave(it->second.second,
                                                 participant);
}

void FleetController::EndMeeting(MeetingId meeting) {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return;
  Member& sw = *switches_[it->second.first];
  // Drain members still joined at meeting end so the freed switch
  // actually looks free to LeastLoaded.
  auto mit = members_.find(meeting);
  if (mit != members_.end()) {
    sw.participants -= static_cast<int>(mit->second.size());
    members_.erase(mit);
  }
  --sw.meetings;
  sw.controller->EndMeeting(it->second.second);
  placement_.erase(it);
  last_migrated_.erase(meeting);
}

void FleetController::MigrateMeeting(MeetingId meeting, size_t target_switch) {
  auto it = placement_.find(meeting);
  if (it == placement_.end() || it->second.first == target_switch) return;
  const size_t source_switch = it->second.first;
  // Let the substrate/harness drop the members' sessions first (they must
  // re-signal onto the target); anything still joined afterwards is
  // drained below.
  if (migration_cb_) migration_cb_(meeting, source_switch, target_switch);
  Member& from = *switches_[source_switch];
  Member& to = *switches_[target_switch];

  // The old switch-local meeting is over (state wiped by the restart, or
  // torn down on a live source); current members' sessions go with it —
  // they re-Join and land on the target.
  auto mit = members_.find(meeting);
  if (mit != members_.end()) {
    from.participants -= static_cast<int>(mit->second.size());
    mit->second.clear();
  }
  from.controller->EndMeeting(it->second.second);
  --from.meetings;

  MeetingId local = to.controller->CreateMeeting();
  ++to.meetings;
  it->second = {target_switch, local};
  last_migrated_[meeting] = sched_ != nullptr ? sched_->now() : 0;
  ++stats_.placements_rebalanced;
}

void FleetController::OnSwitchDown(size_t switch_index) {
  Member& m = *switches_[switch_index];
  if (!m.alive) return;  // already declared dead: migrate exactly once
  m.alive = false;
  std::vector<MeetingId> hosted;
  for (const auto& [meeting, place] : placement_) {
    if (place.first == switch_index) hosted.push_back(meeting);
  }
  for (MeetingId meeting : hosted) {
    size_t standby = LeastLoaded(switch_index);
    // With no live standby the meeting stays put and recovers only when
    // the switch itself is revived (single-switch fleets behave like the
    // plain Scallop testbed's restart failover).
    if (standby == SIZE_MAX) continue;
    MigrateMeeting(meeting, standby);
  }
}

void FleetController::ReviveSwitch(size_t switch_index) {
  Member& m = *switches_[switch_index];
  m.alive = true;
  // Restart the liveness clock: the grace period before fresh heartbeats
  // arrive must not count as misses and instantly re-kill the switch.
  if (sched_ != nullptr) m.last_heartbeat = sched_->now();
}

bool FleetController::IsAlive(size_t switch_index) const {
  return switches_[switch_index]->alive;
}

size_t FleetController::PlacementOf(MeetingId meeting) const {
  auto it = placement_.find(meeting);
  return it == placement_.end() ? SIZE_MAX : it->second.first;
}

std::pair<size_t, MeetingId> FleetController::PlacementDetail(
    MeetingId meeting) const {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return {SIZE_MAX, 0};
  return it->second;
}

int FleetController::LoadOf(size_t switch_index) const {
  return switches_[switch_index]->participants;
}

int FleetController::MeetingsOn(size_t switch_index) const {
  return switches_[switch_index]->meetings;
}

net::Ipv4 FleetController::SfuIpOf(size_t switch_index) const {
  return switches_[switch_index]->sfu_ip;
}

bool FleetController::IsMember(MeetingId meeting,
                               ParticipantId participant) const {
  auto it = members_.find(meeting);
  return it != members_.end() && it->second.count(participant) > 0;
}

const SwitchLoadReport& FleetController::ReportedLoadOf(
    size_t switch_index) const {
  return switches_[switch_index]->last_report;
}

}  // namespace scallop::core
