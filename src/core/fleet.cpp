#include "core/fleet.hpp"

#include <limits>

namespace scallop::core {

size_t FleetController::AddSwitch(SwitchAgent& agent, net::Ipv4 sfu_ip) {
  auto member = std::make_unique<Member>();
  member->controller = std::make_unique<Controller>(agent, sfu_ip);
  member->sfu_ip = sfu_ip;
  switches_.push_back(std::move(member));
  return switches_.size() - 1;
}

size_t FleetController::LeastLoaded() const {
  size_t best = 0;
  int best_load = std::numeric_limits<int>::max();
  for (size_t i = 0; i < switches_.size(); ++i) {
    // Participants dominate load (streams scale with them); meetings break
    // ties so empty switches fill round-robin.
    int load = switches_[i]->participants * 64 + switches_[i]->meetings;
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

MeetingId FleetController::CreateMeeting() {
  size_t idx = LeastLoaded();
  MeetingId local = switches_[idx]->controller->CreateMeeting();
  MeetingId global = next_meeting_++;
  placement_[global] = {idx, local};
  ++switches_[idx]->meetings;
  ++stats_.meetings_placed;
  return global;
}

FleetController::JoinResult FleetController::Join(
    MeetingId meeting, const sdp::SessionDescription& offer,
    SignalingClient* client) {
  auto place = placement_.at(meeting);
  ++switches_[place.first]->participants;
  return switches_[place.first]->controller->Join(place.second, offer,
                                                  client);
}

void FleetController::Leave(MeetingId meeting, ParticipantId participant) {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return;
  --switches_[it->second.first]->participants;
  switches_[it->second.first]->controller->Leave(it->second.second,
                                                 participant);
}

void FleetController::EndMeeting(MeetingId meeting) {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return;
  --switches_[it->second.first]->meetings;
  switches_[it->second.first]->controller->EndMeeting(it->second.second);
  placement_.erase(it);
}

size_t FleetController::PlacementOf(MeetingId meeting) const {
  auto it = placement_.find(meeting);
  return it == placement_.end() ? SIZE_MAX : it->second.first;
}

int FleetController::LoadOf(size_t switch_index) const {
  return switches_[switch_index]->participants;
}

}  // namespace scallop::core
