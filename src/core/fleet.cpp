#include "core/fleet.hpp"

#include <limits>
#include <stdexcept>

namespace scallop::core {

size_t FleetController::AddSwitch(SwitchAgent& agent, net::Ipv4 sfu_ip) {
  auto member = std::make_unique<Member>();
  // Disjoint participant-id range per switch: without it, two switch
  // controllers both counting from 1 could hand out the same id, and a
  // stale Leave for a participant migrated off one switch would pass the
  // membership guard and kick a live, unrelated member on another.
  constexpr ParticipantId kIdStride = 1'000'000;
  member->controller = std::make_unique<Controller>(
      agent, sfu_ip,
      static_cast<ParticipantId>(switches_.size()) * kIdStride + 1);
  member->sfu_ip = sfu_ip;
  switches_.push_back(std::move(member));
  return switches_.size() - 1;
}

size_t FleetController::LeastLoaded(size_t exclude) const {
  size_t best = SIZE_MAX;
  int best_load = std::numeric_limits<int>::max();
  for (size_t i = 0; i < switches_.size(); ++i) {
    if (i == exclude || !switches_[i]->alive) continue;
    // Participants dominate load (streams scale with them); meetings break
    // ties so empty switches fill round-robin.
    int load = switches_[i]->participants * 64 + switches_[i]->meetings;
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

MeetingId FleetController::CreateMeeting() {
  size_t idx = LeastLoaded();
  if (idx == SIZE_MAX) {
    throw std::runtime_error("FleetController: no live switch to place on");
  }
  MeetingId local = switches_[idx]->controller->CreateMeeting();
  MeetingId global = next_meeting_++;
  placement_[global] = {idx, local};
  ++switches_[idx]->meetings;
  ++stats_.meetings_placed;
  return global;
}

FleetController::JoinResult FleetController::Join(
    MeetingId meeting, const sdp::SessionDescription& offer,
    SignalingClient* client) {
  auto place = placement_.at(meeting);
  JoinResult result =
      switches_[place.first]->controller->Join(place.second, offer, client);
  members_[meeting].insert(result.participant);
  ++switches_[place.first]->participants;
  return result;
}

void FleetController::Leave(MeetingId meeting, ParticipantId participant) {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return;
  auto mit = members_.find(meeting);
  // Membership guard: a participant who never joined (or already left —
  // e.g. dropped by a switch failure before its scheduled leave fired)
  // must not decrement the hosting switch's load.
  if (mit == members_.end() || mit->second.erase(participant) == 0) return;
  --switches_[it->second.first]->participants;
  switches_[it->second.first]->controller->Leave(it->second.second,
                                                 participant);
}

void FleetController::EndMeeting(MeetingId meeting) {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return;
  Member& sw = *switches_[it->second.first];
  // Drain members still joined at meeting end so the freed switch
  // actually looks free to LeastLoaded.
  auto mit = members_.find(meeting);
  if (mit != members_.end()) {
    sw.participants -= static_cast<int>(mit->second.size());
    members_.erase(mit);
  }
  --sw.meetings;
  sw.controller->EndMeeting(it->second.second);
  placement_.erase(it);
}

void FleetController::MigrateMeeting(MeetingId meeting, size_t target_switch) {
  auto it = placement_.find(meeting);
  if (it == placement_.end() || it->second.first == target_switch) return;
  Member& from = *switches_[it->second.first];
  Member& to = *switches_[target_switch];

  // The old switch-local meeting is over (state wiped by the restart, or
  // torn down on a live source); current members' sessions go with it —
  // they re-Join and land on the target.
  auto mit = members_.find(meeting);
  if (mit != members_.end()) {
    from.participants -= static_cast<int>(mit->second.size());
    mit->second.clear();
  }
  from.controller->EndMeeting(it->second.second);
  --from.meetings;

  MeetingId local = to.controller->CreateMeeting();
  ++to.meetings;
  it->second = {target_switch, local};
  ++stats_.placements_rebalanced;
}

void FleetController::OnSwitchDown(size_t switch_index) {
  switches_[switch_index]->alive = false;
  std::vector<MeetingId> hosted;
  for (const auto& [meeting, place] : placement_) {
    if (place.first == switch_index) hosted.push_back(meeting);
  }
  for (MeetingId meeting : hosted) {
    size_t standby = LeastLoaded(switch_index);
    // With no live standby the meeting stays put and recovers only when
    // the switch itself is revived (single-switch fleets behave like the
    // plain Scallop testbed's restart failover).
    if (standby == SIZE_MAX) continue;
    MigrateMeeting(meeting, standby);
  }
}

void FleetController::ReviveSwitch(size_t switch_index) {
  switches_[switch_index]->alive = true;
}

bool FleetController::IsAlive(size_t switch_index) const {
  return switches_[switch_index]->alive;
}

size_t FleetController::PlacementOf(MeetingId meeting) const {
  auto it = placement_.find(meeting);
  return it == placement_.end() ? SIZE_MAX : it->second.first;
}

std::pair<size_t, MeetingId> FleetController::PlacementDetail(
    MeetingId meeting) const {
  auto it = placement_.find(meeting);
  if (it == placement_.end()) return {SIZE_MAX, 0};
  return it->second;
}

int FleetController::LoadOf(size_t switch_index) const {
  return switches_[switch_index]->participants;
}

int FleetController::MeetingsOn(size_t switch_index) const {
  return switches_[switch_index]->meetings;
}

net::Ipv4 FleetController::SfuIpOf(size_t switch_index) const {
  return switches_[switch_index]->sfu_ip;
}

bool FleetController::IsMember(MeetingId meeting,
                               ParticipantId participant) const {
  auto it = members_.find(meeting);
  return it != members_.end() && it->second.count(participant) > 0;
}

}  // namespace scallop::core
