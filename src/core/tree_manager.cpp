#include "core/tree_manager.hpp"

#include <algorithm>

namespace scallop::core {

TreeDesign TreeManager::DesignFor(const MeetingSpec& spec) {
  if (spec.members.size() <= 2) return TreeDesign::kTwoParty;
  bool all_full = true;
  bool receiver_uniform = true;
  for (const MemberSpec& p : spec.members) {
    int first_dt = -1;
    for (const MemberSpec& s : spec.members) {
      if (s.id == p.id || !s.sends_video) continue;
      int dt = p.DtFor(s.id);
      if (dt != 2) all_full = false;
      if (first_dt == -1) {
        first_dt = dt;
      } else if (dt != first_dt) {
        receiver_uniform = false;
      }
    }
  }
  if (all_full) return TreeDesign::kNRA;
  if (receiver_uniform) return TreeDesign::kRAR;
  return TreeDesign::kRASR;
}

uint32_t TreeManager::AllocMgid() {
  if (!free_mgids_.empty()) {
    uint32_t m = free_mgids_.back();
    free_mgids_.pop_back();
    return m;
  }
  return next_mgid_++;
}

void TreeManager::FreeMgid(uint32_t mgid) { free_mgids_.push_back(mgid); }

TreeManager::Group* TreeManager::FindOpenGroup(TreeDesign design) {
  for (auto& [id, g] : groups_) {
    if (g.design == design && (g.slots[0] == 0 || g.slots[1] == 0)) {
      return &g;
    }
  }
  return nullptr;
}

std::optional<TreeDesign> TreeManager::CurrentDesign(MeetingId id) const {
  auto it = meetings_.find(id);
  if (it == meetings_.end()) return std::nullopt;
  return it->second.design;
}

TreeDesign TreeManager::Reconfigure(const MeetingSpec& spec) {
  ++stats_.reconfigs;
  TreeDesign desired = DesignFor(spec);

  auto it = meetings_.find(spec.id);
  if (it != meetings_.end()) {
    if (it->second.design != desired) ++stats_.migrations;
    // Make-before-break is modeled by building the replacement state before
    // clearing stream entries of removed members: stream entries are
    // overwritten in place (a single table write repoints the meeting), so
    // media never hits a missing entry mid-migration.
    MeetingRecord old = std::move(it->second);
    meetings_.erase(it);
    MeetingRecord rec;
    rec.design = desired;
    rec.spec = spec;
    switch (desired) {
      case TreeDesign::kTwoParty: BuildTwoParty(spec, rec); break;
      case TreeDesign::kNRA: BuildNRA(spec, rec); break;
      case TreeDesign::kRAR: BuildRAR(spec, rec); break;
      case TreeDesign::kRASR: BuildRASR(spec, rec); break;
    }
    meetings_.emplace(spec.id, std::move(rec));
    TearDown(old);
    return desired;
  }

  MeetingRecord rec;
  rec.design = desired;
  rec.spec = spec;
  switch (desired) {
    case TreeDesign::kTwoParty: BuildTwoParty(spec, rec); break;
    case TreeDesign::kNRA: BuildNRA(spec, rec); break;
    case TreeDesign::kRAR: BuildRAR(spec, rec); break;
    case TreeDesign::kRASR: BuildRASR(spec, rec); break;
  }
  meetings_.emplace(spec.id, std::move(rec));
  return desired;
}

void TreeManager::RemoveMeeting(MeetingId id) {
  auto it = meetings_.find(id);
  if (it == meetings_.end()) return;
  MeetingRecord rec = std::move(it->second);
  meetings_.erase(it);
  // Remove this meeting's stream entries.
  for (const MemberSpec& m : rec.spec.members) {
    if (m.sends_video) dp_.RemoveStream(StreamKey{m.media_src, m.video_ssrc});
    if (m.sends_audio) dp_.RemoveStream(StreamKey{m.media_src, m.audio_ssrc});
  }
  TearDown(rec);
}

void TreeManager::TearDown(MeetingRecord& rec) {
  // Remove this meeting's nodes from (possibly shared) trees.
  for (auto [mgid, node_id] : rec.nodes) {
    pre_.RemoveNode(mgid, node_id);
  }
  rec.nodes.clear();
  // Leave the pairing group; destroy trees when the group empties.
  if (rec.group_id != 0) {
    auto git = groups_.find(rec.group_id);
    if (git != groups_.end()) {
      Group& g = git->second;
      if (rec.slot >= 1 && rec.slot <= 2) g.slots[rec.slot - 1] = 0;
      if (g.slots[0] == 0 && g.slots[1] == 0) {
        for (uint32_t mgid : g.mgids) {
          pre_.DestroyTree(mgid);
          FreeMgid(mgid);
        }
        groups_.erase(git);
      }
    }
  }
  // RA-SR trees are owned by the meeting alone.
  for (uint32_t mgid : rec.own_mgids) {
    pre_.DestroyTree(mgid);
    FreeMgid(mgid);
  }
  rec.own_mgids.clear();
}

void TreeManager::InstallStreams(
    const MeetingSpec& spec, TreeDesign design,
    const std::map<ParticipantId, uint32_t>& sender_mgid,
    const std::map<ParticipantId, uint16_t>& sender_xid) {
  for (const MemberSpec& m : spec.members) {
    if (!m.sends_video && !m.sends_audio) continue;
    StreamEntry entry;
    entry.meeting = spec.id;
    entry.sender = m.id;
    entry.design = design;
    if (design == TreeDesign::kTwoParty) {
      for (const MemberSpec& peer : spec.members) {
        if (peer.id != m.id) entry.peer_egress = peer.id;
      }
    } else {
      entry.mgid_base = sender_mgid.at(m.id);
      entry.l1_xid = sender_xid.at(m.id);
      entry.rid = static_cast<uint16_t>(m.id);
      entry.l2_xid = static_cast<uint16_t>(m.id);
      // The sender's own egress port is excluded via its L2-XID.
      pre_.MapL2Xid(static_cast<uint16_t>(m.id), {m.id});
    }
    if (m.sends_video) {
      entry.is_video = true;
      dp_.InstallStream(StreamKey{m.media_src, m.video_ssrc}, entry);
    }
    if (m.sends_audio) {
      entry.is_video = false;
      dp_.InstallStream(StreamKey{m.media_src, m.audio_ssrc}, entry);
    }
  }
}

void TreeManager::BuildTwoParty(const MeetingSpec& spec, MeetingRecord& rec) {
  (void)rec;
  InstallStreams(spec, TreeDesign::kTwoParty, {}, {});
}

void TreeManager::BuildNRA(const MeetingSpec& spec, MeetingRecord& rec) {
  Group* g = FindOpenGroup(TreeDesign::kNRA);
  uint32_t group_id;
  if (g == nullptr) {
    group_id = next_group_id_++;
    Group fresh;
    fresh.design = TreeDesign::kNRA;
    uint32_t mgid = AllocMgid();
    pre_.CreateTree(mgid);
    ++stats_.trees_built;
    fresh.mgids = {mgid};
    groups_.emplace(group_id, fresh);
    g = &groups_.at(group_id);
  } else {
    group_id = 0;
    for (auto& [id, grp] : groups_) {
      if (&grp == g) group_id = id;
    }
  }
  uint8_t slot = g->slots[0] == 0 ? 1 : 2;
  g->slots[slot - 1] = spec.id;
  rec.group_id = group_id;
  rec.slot = slot;

  uint32_t mgid = g->mgids[0];
  for (const MemberSpec& m : spec.members) {
    switchsim::L1Node node;
    node.node_id = NextNodeId();
    node.rid = static_cast<uint16_t>(m.id);
    node.l1_xid = slot;
    node.prune_enabled = true;
    node.ports = {m.id};
    pre_.AddNode(mgid, node);
    ++stats_.nodes_added;
    rec.nodes.emplace_back(mgid, node.node_id);
  }

  std::map<ParticipantId, uint32_t> sender_mgid;
  std::map<ParticipantId, uint16_t> sender_xid;
  uint16_t exclude_xid = slot == 1 ? 2 : 1;  // exclude the other slot
  for (const MemberSpec& m : spec.members) {
    sender_mgid[m.id] = mgid;
    sender_xid[m.id] = exclude_xid;
  }
  InstallStreams(spec, TreeDesign::kNRA, sender_mgid, sender_xid);
}

void TreeManager::BuildRAR(const MeetingSpec& spec, MeetingRecord& rec) {
  Group* g = FindOpenGroup(TreeDesign::kRAR);
  uint32_t group_id;
  if (g == nullptr) {
    group_id = next_group_id_++;
    Group fresh;
    fresh.design = TreeDesign::kRAR;
    // Three consecutive mgids: cumulative layer trees l = 0,1,2.
    uint32_t base = AllocMgid();
    uint32_t m1 = AllocMgid();
    uint32_t m2 = AllocMgid();
    // Consecutive allocation is required (mgid_base + layer addressing);
    // regenerate if the free list broke contiguity.
    if (m1 != base + 1 || m2 != base + 2) {
      base = next_mgid_;
      next_mgid_ += 3;
      m1 = base + 1;
      m2 = base + 2;
    }
    for (uint32_t l = 0; l < 3; ++l) {
      pre_.CreateTree(base + l);
      ++stats_.trees_built;
    }
    fresh.mgids = {base, base + 1, base + 2};
    groups_.emplace(group_id, fresh);
    g = &groups_.at(group_id);
  } else {
    group_id = 0;
    for (auto& [id, grp] : groups_) {
      if (&grp == g) group_id = id;
    }
  }
  uint8_t slot = g->slots[0] == 0 ? 1 : 2;
  g->slots[slot - 1] = spec.id;
  rec.group_id = group_id;
  rec.slot = slot;

  for (const MemberSpec& m : spec.members) {
    // Uniform decode target of this receiver (same across senders).
    int dt = 2;
    for (const MemberSpec& s : spec.members) {
      if (s.id != m.id && s.sends_video) dt = m.DtFor(s.id);
    }
    for (int l = 0; l < 3; ++l) {
      if (dt < l) continue;  // receiver not in trees above its target
      switchsim::L1Node node;
      node.node_id = NextNodeId();
      node.rid = static_cast<uint16_t>(m.id);
      node.l1_xid = slot;
      node.prune_enabled = true;
      node.ports = {m.id};
      pre_.AddNode(g->mgids[static_cast<size_t>(l)], node);
      ++stats_.nodes_added;
      rec.nodes.emplace_back(g->mgids[static_cast<size_t>(l)], node.node_id);
    }
  }

  std::map<ParticipantId, uint32_t> sender_mgid;
  std::map<ParticipantId, uint16_t> sender_xid;
  uint16_t exclude_xid = slot == 1 ? 2 : 1;
  for (const MemberSpec& m : spec.members) {
    sender_mgid[m.id] = g->mgids[0];
    sender_xid[m.id] = exclude_xid;
  }
  InstallStreams(spec, TreeDesign::kRAR, sender_mgid, sender_xid);
}

void TreeManager::BuildRASR(const MeetingSpec& spec, MeetingRecord& rec) {
  // Collect video senders; audio-only senders ride the first pair block's
  // layer-0 tree via their own stream entries.
  std::vector<const MemberSpec*> senders;
  for (const MemberSpec& m : spec.members) {
    if (m.sends_video || m.sends_audio) senders.push_back(&m);
  }
  std::map<ParticipantId, uint32_t> sender_mgid;
  std::map<ParticipantId, uint16_t> sender_xid;

  for (size_t i = 0; i < senders.size(); i += 2) {
    // One block of q=3 trees per pair of senders.
    uint32_t base = next_mgid_;
    next_mgid_ += 3;
    for (uint32_t l = 0; l < 3; ++l) {
      pre_.CreateTree(base + l);
      ++stats_.trees_built;
      rec.own_mgids.push_back(base + l);
    }
    for (size_t k = 0; k < 2 && i + k < senders.size(); ++k) {
      const MemberSpec& s = *senders[i + k];
      uint8_t branch_xid = static_cast<uint8_t>(k + 1);
      sender_mgid[s.id] = base;
      sender_xid[s.id] = branch_xid == 1 ? 2 : 1;  // exclude the other branch
      for (const MemberSpec& p : spec.members) {
        if (p.id == s.id) continue;
        int dt = p.DtFor(s.id);
        for (int l = 0; l < 3; ++l) {
          if (dt < l) continue;
          switchsim::L1Node node;
          node.node_id = NextNodeId();
          node.rid = static_cast<uint16_t>(p.id);
          node.l1_xid = branch_xid;
          node.prune_enabled = true;
          node.ports = {p.id};
          pre_.AddNode(base + static_cast<uint32_t>(l), node);
          ++stats_.nodes_added;
          rec.nodes.emplace_back(base + static_cast<uint32_t>(l),
                                 node.node_id);
        }
      }
    }
  }
  InstallStreams(spec, TreeDesign::kRASR, sender_mgid, sender_xid);
}

}  // namespace scallop::core
