// Sequence-number rewriting heuristics (paper §6.2).
//
// When the data plane suppresses SVC layers for a receiver, the surviving
// packets must be renumbered so the receiver sees a gapless stream.
// Suppression decided *in this switch* is directly observable, so the only
// ambiguity comes from packets missing at the egress because they were lost
// or reordered upstream: were they suppressed-frame packets (mask the gap)
// or forwarded-frame packets (leave the gap so the receiver retransmits)?
//
// Design rule shared by both heuristics (the paper's key experimental
// finding): never emit an output sequence number that could collide with a
// different packet's output — a duplicate breaks the decoder permanently,
// while an extra gap only costs a retransmission.
//
//  - S-LM (low memory): per-stream state {highest seq, highest frame,
//    offset, last-gap-masked bit} + the control-plane-installed skip
//    cadence. Gaps are masked iff the frame counter jumped across frames
//    that the cadence says are suppressed. Late packets are forwarded only
//    in the single safe case (exactly one behind, no recent mask).
//  - S-LR (low retransmission): adds {first seq of latest forwarded frame,
//    last-frame-ended bit, highest suppressed frame}. The extra state
//    (a) masks between-frame gaps only when the boundary bits prove the gap
//    cannot contain forwarded-frame bytes, and (b) safely rewrites any
//    reordered packet belonging to the current frame, cutting erroneous
//    retransmissions at roughly 2.5x the memory footprint.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/seqnum.hpp"

namespace scallop::core {

// Frame-cadence installed by the control plane: which frame numbers (mod
// `modulus`, anchored at the last key frame) are forwarded to this receiver.
// L1T3 pattern: offsets {0:TL0, 1:TL2, 2:TL1, 3:TL2} relative to a key.
struct SkipCadence {
  uint8_t modulus = 4;
  uint8_t keep_mask = 0x0f;  // bit i => frames at offset i are kept
  uint16_t anchor = 0;       // frame number of the anchoring key frame

  bool Keeps(uint16_t frame) const {
    uint16_t off = static_cast<uint16_t>(frame - anchor) % modulus;
    return (keep_mask >> off) & 1;
  }
  // Frames strictly between `from` and `to` that the cadence keeps.
  int KeptBetween(uint16_t from, uint16_t to) const;
  // True if every frame number strictly between `from` and `to` (serial
  // order) is suppressed by this cadence. False when the range is empty:
  // an empty range means the gap is inside forwarded frames.
  bool AllSkippedBetween(uint16_t from, uint16_t to) const;

  static SkipCadence ForDecodeTarget(int dt, uint16_t anchor_frame);
};

struct RewritePacketView {
  uint16_t seq = 0;
  uint16_t frame = 0;
  bool start_of_frame = true;
  bool end_of_frame = true;
  bool suppress = false;  // SVC filter verdict for this receiver
};

struct RewriteResult {
  bool forward = false;
  uint16_t out_seq = 0;
};

class SequenceRewriter {
 public:
  virtual ~SequenceRewriter() = default;
  virtual RewriteResult Process(const RewritePacketView& pkt) = 0;
  virtual void SetCadence(const SkipCadence& cadence) = 0;
  // Current input->output offset; the data plane uses it to translate NACK
  // sequence numbers back into the sender's space.
  virtual int64_t current_offset() const = 0;
  // Per-stream register footprint in bits (drives the capacity model).
  virtual size_t state_bits() const = 0;
  virtual std::string name() const = 0;
};

class SlmRewriter : public SequenceRewriter {
 public:
  explicit SlmRewriter(const SkipCadence& cadence = {}) : cadence_(cadence) {}

  RewriteResult Process(const RewritePacketView& pkt) override;
  void SetCadence(const SkipCadence& cadence) override { cadence_ = cadence; }
  int64_t current_offset() const override { return offset_; }
  size_t state_bits() const override { return 64; }
  std::string name() const override { return "S-LM"; }

 private:
  SkipCadence cadence_;
  bool started_ = false;
  util::SeqUnwrapper seq_unwrap_;
  int64_t highest_seq_ = 0;
  uint16_t highest_frame_ = 0;
  int64_t offset_ = 0;
  bool pending_hole_ = false;
};

class SlrRewriter : public SequenceRewriter {
 public:
  explicit SlrRewriter(const SkipCadence& cadence = {}) : cadence_(cadence) {}

  RewriteResult Process(const RewritePacketView& pkt) override;
  void SetCadence(const SkipCadence& cadence) override { cadence_ = cadence; }
  int64_t current_offset() const override { return offset_; }
  size_t state_bits() const override { return 160; }
  std::string name() const override { return "S-LR"; }

 private:
  SkipCadence cadence_;
  bool started_ = false;
  util::SeqUnwrapper seq_unwrap_;
  int64_t highest_seq_ = 0;
  uint16_t highest_frame_ = 0;
  int64_t offset_ = 0;
  // Extra S-LR state.
  int64_t first_seq_latest_frame_ = 0;  // first seq of latest forwarded frame
  int64_t offset_latest_frame_ = 0;     // offset in effect for that frame
  uint16_t latest_frame_ = 0;           // frame number of that frame
  bool last_frame_ended_ = false;
  uint16_t highest_suppressed_frame_ = 0;
  bool any_suppressed_ = false;
  // One reserved single-packet hole: a reordered/retransmitted arrival at
  // exactly this sequence number is rewritten with the offset that was in
  // effect at the hole's position (position- and offset-exact, so the fill
  // can never collide with any other output).
  int64_t hole_seq_ = -1;
  int64_t hole_offset_ = 0;
  // First sequence number mapped with the current offset. Any late packet
  // at or above it can be rewritten with the current offset verbatim —
  // this is what lets retransmissions of receiver-side losses pass through
  // an adapted stream.
  int64_t offset_valid_from_ = 0;
  // Running packets-per-frame estimate (two counters in hardware). Enables
  // proportional gap attribution: a multi-frame gap under loss is masked
  // by the share attributable to suppressed frames, leaving holes only for
  // the (estimated) lost packets of kept frames.
  uint32_t packets_seen_ = 0;
  uint32_t frames_seen_ = 0;

  double PacketsPerFrame() const {
    return frames_seen_ > 0
               ? static_cast<double>(packets_seen_) /
                     static_cast<double>(frames_seen_)
               : 2.0;
  }
};

// Oracle with ground truth: told about every packet in sender order (and
// whether the SFU would suppress it), so it can compute the ideal mapping —
// masking exactly the suppressed packets and leaving gaps exactly for lost
// forwarded packets. Used as the baseline for the Fig. 18 overhead metric.
class OracleRewriter : public SequenceRewriter {
 public:
  // Must be called for every packet the sender emits, in send order,
  // before the corresponding Process() calls.
  void NoteSenderPacket(uint16_t seq, bool suppress);

  RewriteResult Process(const RewritePacketView& pkt) override;
  void SetCadence(const SkipCadence&) override {}
  int64_t current_offset() const override { return suppressed_so_far_; }
  size_t state_bits() const override { return 0; }  // not implementable in HW
  std::string name() const override { return "Oracle"; }

 private:
  util::SeqUnwrapper note_unwrap_;
  util::SeqUnwrapper proc_unwrap_;
  // Dense table of ideal output seqs, indexed by unwrapped sender seq
  // minus `ideal_base_` (NoteSenderPacket runs in send order, so the key
  // space is contiguous — a vector beats a per-packet hash lookup).
  // Negative values mean "suppressed"; kNeverNoted marks gaps.
  static constexpr int64_t kNeverNoted = INT64_MIN;
  std::vector<int64_t> ideal_;
  int64_t ideal_base_ = -1;  // unwrapped seq of ideal_[0]; -1 = empty
  int64_t suppressed_so_far_ = 0;
};

}  // namespace scallop::core
