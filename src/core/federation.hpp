// Federated control plane (SDN survey arXiv:1406.0440 §V: distributed
// controllers; Contrail-style peered control nodes): R per-region
// controllers, each owning a contiguous slice of the switch fleet,
// replacing the single FleetController monolith at the top of the stack.
//
// The split happens in two layers:
//
//   * MeetingDirectory — FleetController's meeting state (placement,
//     membership, relay wiring, rebalance hysteresis) extracted behind a
//     shardable interface. Each regional controller owns exactly the
//     directory shard for the meetings it placed; the plane never peeks
//     into a shard except through its owner (or when adopting it).
//
//   * FederatedControlPlane — the east-west layer. Controllers peer over
//     MessageConduits carrying the same latency/loss/ack semantics as
//     the southbound ControlChannel: meeting announcements and directory
//     lookups (so any region can serve a Join for a meeting it does not
//     own), a synchronous border-span negotiation (two owning
//     controllers agree to extend a meeting's relay tree across the
//     region boundary, riding the existing RelaySpan mechanics), and
//     controller-to-controller heartbeats feeding the same
//     miss-threshold failure detector the fleet already points at
//     switches — on controller death the lowest live peer adopts the
//     orphaned shard (switches, directory, relay load) and life goes on.
//
// R == 1 is the degenerate federation: one region, no conduits, no
// tasks, every call forwarded straight to the single FleetController —
// byte-identical to the pre-federation fleet.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/control_channel.hpp"
#include "core/controller.hpp"
#include "core/placement.hpp"
#include "core/redundancy.hpp"

namespace scallop::core {

class FleetController;
struct FleetStats;
struct RebalanceConfig;

// One installed inter-switch relay: `origin`'s stream crossing one tree
// edge from `upstream` to `downstream`. On multi-level plans a stream
// reaches distant spans through a chain of these, one per hop.
struct MeetingRelay {
  ParticipantId origin = 0;           // the real sender being carried
  size_t upstream = SIZE_MAX;         // switch forwarding the stream
  size_t downstream = SIZE_MAX;       // switch receiving it
  ParticipantId upstream_sender = 0;  // origin or its relay sender there
  ParticipantId relay_receiver = 0;   // pseudo-receiver on upstream
  ParticipantId relay_sender = 0;     // pseudo-sender on downstream
  uint16_t upstream_port = 0;         // relay leg port (media source)
  uint16_t downstream_port = 0;       // relay uplink port (media dest)
  uint32_t video_ssrc = 0;
  uint32_t audio_ssrc = 0;
  bool sends_video = false;
  bool sends_audio = false;
  // Backbone switches the hop physically crosses (upstream..downstream
  // over the topology's shortest path) and the per-stream load estimate
  // registered on each of those links while the relay is installed.
  std::vector<size_t> backbone_path;
  double load_bps = 0.0;
};

// One hop of a secondary (protection) relay chain. Interior hops park a
// dedicated relay sender in a switch-local *protection meeting* (invisible
// to placement — it carries no members); the terminal hop attaches to the
// protected primary relay sender as an extra source instead, merging the
// two trees behind one (origin, seq) dedup window.
struct ProtectionHop {
  size_t upstream = SIZE_MAX;
  size_t downstream = SIZE_MAX;
  ParticipantId sender_on_upstream = 0;  // id the stream is known by there
  ParticipantId relay_receiver = 0;      // pseudo-receiver on upstream
  ParticipantId relay_sender = 0;  // pseudo-sender downstream (interior) or
                                   // the protected relay sender (terminal)
  uint16_t upstream_port = 0;      // relay leg port (secondary media source)
  uint16_t downstream_port = 0;
  bool terminal = false;  // attaches to the primary relay via AddRelaySource
};

// A secondary relay tree protecting one primary relay (origin's stream on
// the tree edge upstream -> downstream): a chain of ProtectionHops along a
// link-disjoint (or maximally disjoint) backbone path. `active` flips true
// when the secondary has been promoted to primary (make-before-break): its
// terminal leg then belongs to the relay record and its registered load is
// accounted under the relay's backbone path.
struct SecondaryTree {
  ParticipantId origin = 0;
  size_t upstream = SIZE_MAX;
  size_t downstream = SIZE_MAX;
  ParticipantId protected_relay = 0;  // primary relay sender at downstream
  std::vector<size_t> path;           // switch chain upstream..downstream
  std::vector<ProtectionHop> hops;
  double load_bps = 0.0;
  bool active = false;
};

// One meeting member as the controller tracks it.
struct MeetingMemberInfo {
  size_t home_switch = SIZE_MAX;
  SignalingClient* client = nullptr;
  SenderIntent intent;  // what the member sends (parsed from its offer)
};

// Everything a controller knows about one meeting: the distribution
// plan, the membership roster, the installed relay wiring, and the
// rebalancer's per-meeting hysteresis. Self-contained on purpose — a
// record can be handed from a dead controller to its adopter wholesale
// (switch indices remapped, nothing else).
struct MeetingRecord {
  MeetingPlacement placement;
  std::map<ParticipantId, MeetingMemberInfo> members;
  std::vector<MeetingRelay> relays;
  // Redundant dual relay trees: one secondary per protected relay, plus
  // the switch-local protection meetings hosting interior chain hops
  // (switch index -> switch-local meeting id). Both empty whenever
  // redundancy is off.
  std::vector<SecondaryTree> secondaries;
  std::map<size_t, MeetingId> protection_meetings;
  // Mid-renegotiation (failover blackout / migration re-signal window):
  // the rebalancer must not touch the meeting. Cleared on re-Join.
  bool frozen = false;
  // Rebalancer hysteresis: when the meeting last migrated (valid only
  // once `migrated_once` is set).
  bool migrated_once = false;
  util::TimeUs last_migrated = 0;
};

// The shardable meeting-state store. A controller owns exactly one shard
// and goes through this interface for every meeting it tracks, so the
// store's locality is an implementation detail: the local shard below is
// a plain map, and the federation hands whole shards between controllers
// on adoption without FleetController noticing.
class MeetingDirectory {
 public:
  virtual ~MeetingDirectory() = default;
  virtual MeetingRecord* Find(MeetingId id) = 0;
  virtual const MeetingRecord* Find(MeetingId id) const = 0;
  virtual MeetingRecord& Emplace(MeetingId id, MeetingRecord record) = 0;
  virtual void Erase(MeetingId id) = 0;
  virtual size_t size() const = 0;
  // Every tracked meeting id, ascending. Iteration goes through this (not
  // raw map iterators) so mutation during a sweep is safe and sharded
  // backends need not expose stable iterators.
  virtual std::vector<MeetingId> Ids() const = 0;
};

// The default single-region shard: an in-memory ordered map.
class LocalDirectoryShard : public MeetingDirectory {
 public:
  MeetingRecord* Find(MeetingId id) override {
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
  }
  const MeetingRecord* Find(MeetingId id) const override {
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
  }
  MeetingRecord& Emplace(MeetingId id, MeetingRecord record) override {
    return records_.insert_or_assign(id, std::move(record)).first->second;
  }
  void Erase(MeetingId id) override { records_.erase(id); }
  size_t size() const override { return records_.size(); }
  std::vector<MeetingId> Ids() const override {
    std::vector<MeetingId> ids;
    ids.reserve(records_.size());
    for (const auto& [id, rec] : records_) ids.push_back(id);
    return ids;
  }

 private:
  std::map<MeetingId, MeetingRecord> records_;
};

struct FederationConfig {
  size_t regions = 1;
  // Total switches the fleet will register (fixes the region slices:
  // contiguous, sizes differing by at most one, remainder to the first
  // regions). Only consulted when regions > 1.
  size_t switches = 0;
  // East-west conduit characteristics (typically mirrored from the
  // southbound control-plane config).
  util::DurationUs east_west_latency = 0;
  double east_west_loss = 0.0;
  uint64_t seed = 1;
  // Controller-to-controller heartbeat cadence; 0 disables peering tasks
  // (and with them failure detection/adoption).
  util::DurationUs heartbeat_interval = util::Millis(50);
};

struct FederationStats {
  uint64_t directory_lookups = 0;         // Join/Leave owner resolutions
  uint64_t directory_lookups_remote = 0;  // ... that had to ask peers
  uint64_t directory_announcements = 0;   // new-meeting adverts to peers
  uint64_t border_spans = 0;              // cross-region guest grants
  uint64_t controller_heartbeats_seen = 0;
  uint64_t controller_heartbeats_missed = 0;  // detector ticks gone stale
  uint64_t controllers_failed = 0;            // KillController calls
  uint64_t shards_adopted = 0;                // whole-shard takeovers
  uint64_t meetings_adopted = 0;              // records moved by adoption
};

// R regional FleetControllers behind one SignalingServer face. All
// switch indices on this API are *global* (the testbed's numbering);
// each region privately maps its slice to controller-local indices.
class FederatedControlPlane : public SignalingServer {
 public:
  FederatedControlPlane(sim::Scheduler& sched, const FederationConfig& cfg);
  ~FederatedControlPlane() override;

  // Registers the next switch (global index = registration order) with
  // its slice's regional controller. Returns the global index.
  size_t AddSwitch(ControlChannel& channel, net::Ipv4 sfu_ip);
  // Starts east-west peering (controller heartbeats + the per-region
  // failure detectors). Call once, after every switch is registered.
  // No-op for R == 1.
  void Activate();

  // ---- signaling (any region can serve any meeting) ----------------------
  MeetingId CreateMeeting();
  // Follow-the-sun placement: mints the meeting in region `r` (announced
  // east-west like CreateMeeting) so load genuinely lands where the spec
  // says the day currently is. Falls back to the global least-loaded
  // region when `r` is dead; identical to CreateMeeting for R == 1.
  MeetingId CreateMeetingIn(size_t r);
  JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                  SignalingClient* client) override;
  void Leave(MeetingId meeting, ParticipantId participant) override;
  // Region-pinned signaling face for roaming clients: Joins/Leaves enter
  // the federation at region `r` (their current access region) instead of
  // the round-robin ingress, resolving the owner east-west from there. A
  // dead ingress region falls back to round-robin. For R == 1 this is the
  // plane itself. The reference stays valid for the plane's lifetime.
  SignalingServer& ingress(size_t r);
  JoinResult JoinVia(size_t r, MeetingId meeting,
                     const sdp::SessionDescription& offer,
                     SignalingClient* client);
  void LeaveVia(size_t r, MeetingId meeting, ParticipantId participant);

  // ---- forwarded fleet surface (global switch indices) -------------------
  void SetPlacementPolicy(const PlacementPolicyConfig& policy);
  // Heterogeneous fleets: forwards a switch's capacity class to its
  // owning region's controller (global index; see
  // FleetController::SetSwitchCapacity).
  void SetSwitchCapacity(size_t global_switch, double capacity_class);
  void set_relay_stream_bps(double bps);
  void ConfigureInterSwitchLink(size_t a, size_t b, double latency_s,
                                double capacity_bps);
  void SetInterSwitchLinkCapacity(size_t a, size_t b, double capacity_bps);
  // R == 1: the single region's live view. R > 1: the plane's global
  // link-state view (per-region controllers keep slice-local views; use
  // LinkLoad for the federated load on a link).
  const InterSwitchTopology& topology() const;
  void EnableRebalancer(const RebalanceConfig& cfg);
  // Redundant dual relay trees + make-before-break migration: forwarded
  // to every region's controller. Off by default (classic behaviour).
  void SetRedundancy(const RedundancyConfig& cfg);
  // Fired after a hitless (make-before-break) migration completes; unlike
  // the migration callback, members were never dropped. Global indices.
  void SetHitlessMigrationCallback(
      std::function<void(MeetingId, size_t, size_t)> cb);
  void SetMigrationCallback(std::function<void(MeetingId, size_t, size_t)> cb);
  void FreezeMeetings(const std::vector<MeetingId>& meetings);
  MeetingPlacement PlacementOf(MeetingId meeting) const;
  std::pair<size_t, MeetingId> PlacementDetail(MeetingId meeting) const;
  std::vector<MeetingRelay> RelaysOf(MeetingId meeting) const;
  bool IsAlive(size_t global_switch) const;
  int LoadOf(size_t global_switch) const;
  int MeetingsOn(size_t global_switch) const;
  net::Ipv4 SfuIpOf(size_t global_switch) const;
  void ReviveSwitch(size_t global_switch);
  // Relay load currently registered on backbone link a-b, summed across
  // every live region's slice-local view.
  double LinkLoad(size_t a, size_t b) const;
  // Sum of every region's FleetStats (dead regions included — their
  // history happened).
  FleetStats TotalFleetStats() const;

  // ---- federation control -------------------------------------------------
  // Kills region `r`'s controller: its east-west tasks stop, its
  // FleetController shuts down (southbound telemetry falls on deaf ears;
  // signaling into it throws). Switch agents keep forwarding media — a
  // controller death is not a switch death. Peers notice via missed
  // controller heartbeats and the lowest live region adopts the shard.
  void KillController(size_t r);
  bool RegionAlive(size_t r) const { return !regions_[r].dead; }
  // The region whose directory holds the meeting (dead or alive);
  // SIZE_MAX when unknown.
  size_t OwnerRegionOf(MeetingId meeting) const;
  size_t RegionOfSwitch(size_t global_switch) const {
    return owner_region_[global_switch];
  }

  size_t regions() const { return regions_.size(); }
  size_t switch_count() const { return owner_region_.size(); }
  FleetController& region(size_t r) { return *regions_[r].controller; }
  const FleetController& region(size_t r) const {
    return *regions_[r].controller;
  }
  const FederationStats& federation_stats() const { return stats_; }
  // Aggregate east-west message accounting (all conduits share it).
  const ConduitStats& east_west_stats() const { return ew_stats_; }

  // Enables structured tracing across the whole plane: each region's
  // controller traces on "region:<r>", each east-west conduit on
  // "ew:<a>-<b>", and the plane's own transitions (lookups, controller
  // deaths, adoptions, border spans) on "federation". Controller
  // heartbeats stay untraced — at 20 Hz x R(R-1) they would drown the
  // command timeline the same way switch heartbeats would.
  void set_trace(obs::TraceLog* trace);

 private:
  struct Region {
    std::unique_ptr<FleetController> controller;
    // Controller-local switch index -> global index. Grows past the
    // original slice when the region borrows border guests or adopts a
    // dead peer's switches; cleared when the region's shard is adopted.
    std::vector<size_t> local_to_global;
    bool dead = false;
    bool adopted = false;  // shard already taken over by a peer
    // Peer liveness as *this* region observes it.
    std::vector<util::TimeUs> peer_last_seen;
    std::vector<bool> peer_alive;
    // Directory cache: meeting -> owning region, learned from
    // announcements and lookups. A cache, not truth — verified against
    // the owner's shard on use.
    std::map<MeetingId, size_t> owner_cache;
    // Border guests this region (as meeting owner) negotiated:
    // meeting -> owner-local guest switch index.
    std::map<MeetingId, size_t> border_guest;
    std::unique_ptr<sim::PeriodicTask> hb_task;
    std::unique_ptr<sim::PeriodicTask> detector_task;
  };

  // The conduit between regions a and b (unordered pair; one per pair so
  // each peering link has its own RNG stream).
  MessageConduit& ConduitFor(size_t a, size_t b);
  // Region that should own a new meeting: the one holding the globally
  // least-loaded owned live switch.
  size_t PickOwnerRegion() const;
  // Resolves which live region's directory holds `meeting` for an
  // ingress region: own shard, then verified cache, then a peer query
  // round (two east-west messages per peer asked). SIZE_MAX when no live
  // region has it.
  size_t ResolveOwner(size_t ingress, MeetingId meeting);
  size_t NextIngress();
  size_t LowestLiveRegion() const;
  void SendControllerHeartbeats(size_t from);
  void OnControllerHeartbeat(size_t at, size_t from);
  // Failure-detector tick for region `r`'s view of its peers; the same
  // miss-threshold semantics the fleet uses for switches, re-pointed at
  // controllers. The lowest live region performs the adoption.
  void CheckControllerPeers(size_t r);
  void AdoptRegion(size_t adopter, size_t dead);
  // Owner-side border-span planning hook: a guest switch (borrowed from
  // the least-loaded live peer via a synchronous east-west negotiation)
  // for `meeting` to span onto, as an owner-local index; SIZE_MAX when no
  // peer can lend or the handshake is lost.
  size_t BorderGuestFor(size_t owner, MeetingId meeting);
  size_t ToGlobal(size_t r, size_t local) const;
  // Controller-local index of `global_switch` within region r (owned,
  // borrowed or adopted); false when the region doesn't know the switch.
  bool ToLocal(size_t r, size_t global_switch, size_t* local) const;
  size_t SliceOf(size_t global_switch) const;

  // The region-pinned SignalingServer face behind ingress(): a thin
  // forwarder so a client object (Peer) can hold "my access region" as a
  // plain SignalingServer& without knowing about federation.
  class RegionIngress : public SignalingServer {
   public:
    RegionIngress(FederatedControlPlane& plane, size_t region)
        : plane_(plane), region_(region) {}
    JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                    SignalingClient* client) override {
      return plane_.JoinVia(region_, meeting, offer, client);
    }
    void Leave(MeetingId meeting, ParticipantId participant) override {
      plane_.LeaveVia(region_, meeting, participant);
    }

   private:
    FederatedControlPlane& plane_;
    size_t region_;
  };

  sim::Scheduler& sched_;
  FederationConfig cfg_;
  std::vector<Region> regions_;
  // One facade per region, built lazily by ingress(); unique_ptrs so
  // handed-out references survive vector growth.
  std::vector<std::unique_ptr<RegionIngress>> ingress_faces_;
  // Global switch index -> owning region / owner-local index. Ownership
  // moves on adoption.
  std::vector<size_t> owner_region_;
  std::vector<size_t> owner_local_;
  // Upper-triangle pair conduits (R > 1 only), indexed by PairIndex.
  std::vector<std::unique_ptr<MessageConduit>> conduits_;
  ConduitStats ew_stats_;
  // Global link-state view for R > 1 (per-region controllers only see
  // their slice).
  InterSwitchTopology global_topology_;
  std::function<void(MeetingId, size_t, size_t)> migration_cb_;
  std::function<void(MeetingId, size_t, size_t)> hitless_cb_;
  size_t next_ingress_ = 0;
  FederationStats stats_;
  obs::TraceLog* trace_ = nullptr;
  // Correlation id of the death chain open for observed peer q: assigned
  // at q's first heartbeat miss, reused by the death and adoption events
  // so the whole miss -> dead -> adopted sequence reads as one chain.
  std::vector<uint64_t> death_chain_;
};

}  // namespace scallop::core
