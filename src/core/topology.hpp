// Inter-switch topology model (SDN link-state view): the controller-side
// graph of the backbone connecting the fleet's switches. Each link carries
// a one-way latency, a capacity budget for relay traffic, and the relay
// load the controller has currently routed over it, so placement policies
// can pick relay-tree parents by path cost and residual capacity the way
// SDN multicast controllers compute distribution trees over a link-state
// database (arXiv:1508.03592 "Streaming Multicast Video over SDN",
// arXiv:1406.0440).
//
// Two modes:
//   * implicit full mesh (default) — every switch pair is directly
//     connected with zero latency and unlimited capacity. This is the
//     pre-topology behaviour: hub-and-spoke plans see no reason to do
//     anything else, and existing scenarios are unchanged.
//   * explicit — the first SetLink switches the graph to "only declared
//     links exist"; path queries now route multi-hop across the declared
//     backbone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace scallop::core {

// Declarative link description (ScenarioSpec / TestbedConfig carry these
// as plain values; the testbed feeds them into the fleet's topology and
// mirrors them as sim::Network backbone links).
struct InterSwitchLinkSpec {
  size_t a = 0;
  size_t b = 0;
  double latency_s = 0.0;
  double capacity_bps = 0.0;  // <= 0: unconstrained
};

class InterSwitchTopology {
 public:
  struct Link {
    size_t a = 0;  // a < b (links are undirected)
    size_t b = 0;
    double latency_s = 0.0;
    double capacity_bps = 0.0;   // <= 0: unconstrained
    double relay_load_bps = 0.0; // relay traffic the controller routed here
  };

  InterSwitchTopology() = default;

  // Grows the node set; new switches join the (implicit or explicit)
  // graph. Existing links are untouched.
  void EnsureNodes(size_t n);
  size_t node_count() const { return nodes_; }

  // Declares an explicit link (creating or reshaping it). The first call
  // flips the graph from the implicit full mesh to explicit mode.
  void SetLink(size_t a, size_t b, double latency_s, double capacity_bps);
  // Reshapes just the capacity of an existing link (mid-run events).
  // In implicit mode this declares the link (flipping to explicit) —
  // callers shaping capacity have opted into a modeled backbone. On an
  // explicit backbone, a pair with no declared link is ignored: capacity
  // events may reshape the backbone, never grow it.
  void SetLinkCapacity(size_t a, size_t b, double capacity_bps);
  bool explicit_topology() const { return explicit_; }

  bool HasLink(size_t a, size_t b) const;
  // The link record for (a, b); nullptr when absent. In implicit mesh
  // mode a record is synthesized lazily on first load registration, so
  // this returns nullptr for untouched mesh pairs.
  const Link* FindLink(size_t a, size_t b) const;
  // Every declared (or load-touched) link, ordered by (a, b).
  std::vector<Link> links() const;

  // ---- path queries ------------------------------------------------------
  // Lowest-latency path from `from` to `to` (hop count, then smaller node
  // index break ties, so results are deterministic). Returns the inclusive
  // node sequence; empty when unreachable; {from} when from == to.
  std::vector<size_t> ShortestPath(size_t from, size_t to) const;
  // Maximum-bottleneck-residual path ("widest"): maximizes the smallest
  // residual relay capacity along the path, breaking ties by latency,
  // then fewest hops, then lowest predecessor index — fully deterministic
  // regardless of link declaration order.
  std::vector<size_t> WidestPath(size_t from, size_t to) const;
  // Maximally link-disjoint path from `from` to `to` relative to `avoid`
  // (typically the primary tree's links). Lexicographic Dijkstra: fewest
  // shared avoided links first, then widest bottleneck residual, then
  // lowest latency, fewest hops, lowest predecessor index. Fully disjoint
  // when the graph allows it; otherwise the path sharing the fewest
  // avoided links wins (the ISSUE's "maximally-disjoint" fallback). Links
  // with a declared capacity below `min_capacity_bps` are excluded
  // outright — a cut link (capacity ~0) must never carry a protection
  // tree. Returns {} when unreachable.
  std::vector<size_t> DisjointPath(
      size_t from, size_t to,
      const std::vector<std::pair<size_t, size_t>>& avoid,
      double min_capacity_bps = 0.0) const;
  // The backbone path a relay hop (or any switch-to-switch flow) actually
  // rides: the direct link when one exists — adjacent switches never
  // transit a third switch, as in a real L3 fabric — otherwise the
  // lowest-latency multi-hop path.
  std::vector<size_t> RelayPath(size_t from, size_t to) const;
  double PathLatency(const std::vector<size_t>& path) const;
  // Smallest residual capacity along the path; huge (kUnconstrained) when
  // every hop is unconstrained.
  double PathResidual(const std::vector<size_t>& path) const;

  // ---- relay load registration (control-plane estimates) -----------------
  void AddLoad(const std::vector<size_t>& path, double bps);
  void RemoveLoad(const std::vector<size_t>& path, double bps);
  double LoadOf(size_t a, size_t b) const;
  // capacity - load; kUnconstrained when the link has no capacity bound.
  double ResidualOf(size_t a, size_t b) const;
  // load / capacity (0 for unconstrained links).
  double UtilizationOf(size_t a, size_t b) const;
  double MaxUtilization() const;
  // Links whose registered relay load exceeds their capacity.
  std::vector<std::pair<size_t, size_t>> OverloadedLinks() const;

  static constexpr double kUnconstrained = 1e18;

 private:
  using Key = std::pair<size_t, size_t>;  // normalized a < b
  static Key KeyOf(size_t a, size_t b);
  Link* Mutable(size_t a, size_t b, bool create);

  size_t nodes_ = 0;
  bool explicit_ = false;
  std::map<Key, Link> links_;
};

}  // namespace scallop::core
