// Fleet controller: one logical controller managing multiple Scallop
// switch data planes (paper Appendix A: "our control/data plane split has
// the potential to simplify deploying many SFU data planes under the
// management of a single controller. Our current system is already
// designed in this way").
//
// Each switch is reached through its southbound core::ControlChannel:
// commands flow down through a per-switch Controller, and the northbound
// telemetry stream (Heartbeat + SwitchLoadReport) flows back up. On top
// of the telemetry the fleet runs two control loops:
//   * failure detection — a switch whose heartbeats stop for
//     `heartbeat_miss_threshold` intervals is declared dead and its
//     meetings migrate to the least-loaded live standby (exactly once);
//   * load rebalancing (opt-in, EnableRebalancer) — when the *reported*
//     participant load of the busiest live switch exceeds the idlest by
//     the imbalance threshold, one meeting is re-homed via MigrateMeeting,
//     with a per-meeting cooldown so placements don't ping-pong.
// Meetings are placed on the least-loaded live switch at creation time;
// membership is tracked per meeting so load accounting survives double
// leaves and meeting teardown — the architectural groundwork for
// cascading SFUs; the cascading relay itself is orthogonal and not
// implemented, per the paper.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/controller.hpp"

namespace scallop::core {

struct FleetStats {
  uint64_t meetings_placed = 0;
  uint64_t placements_rebalanced = 0;  // all MigrateMeeting moves
  uint64_t rebalance_migrations = 0;   // moves made by the load rebalancer
  uint64_t heartbeats_seen = 0;
  uint64_t heartbeats_missed = 0;  // detector ticks with a stale heartbeat
  uint64_t load_reports_seen = 0;
  uint64_t switches_failed = 0;  // heartbeat-declared deaths
};

// Load-driven background rebalancer knobs (EnableRebalancer).
struct RebalanceConfig {
  bool enabled = false;
  util::DurationUs interval = util::Seconds(2);
  // Minimum (busiest - idlest) reported participant gap before acting.
  int imbalance_threshold = 2;
  // A meeting that just moved is left alone this long (0 means one
  // rebalance interval), so successive ticks cannot bounce it back while
  // load reports still reflect the pre-move world.
  util::DurationUs cooldown = 0;
};

class FleetController : public SignalingServer,
                        public ControlChannel::EventSink {
 public:
  // Registers a switch via its southbound channel; subscribes to its
  // northbound telemetry and arms the heartbeat failure detector (first
  // switch only). Returns the switch's index in the fleet.
  size_t AddSwitch(ControlChannel& channel, net::Ipv4 sfu_ip);

  // Creates a meeting on the least-loaded live switch.
  MeetingId CreateMeeting();

  // core::SignalingServer — delegates to the owning switch's controller.
  // Leave is guarded by per-meeting membership: leaving a meeting one
  // never joined (or already left) does not skew the switch's load.
  JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                  SignalingClient* client) override;
  void Leave(MeetingId meeting, ParticipantId participant) override;
  // Ends the meeting, draining any still-joined members from the hosting
  // switch's load so freed capacity is visible to LeastLoaded placement.
  void EndMeeting(MeetingId meeting);

  // ---- northbound telemetry (ControlChannel::EventSink) -----------------
  void OnHeartbeat(size_t switch_index) override;
  void OnLoadReport(size_t switch_index,
                    const SwitchLoadReport& report) override;

  // Starts the periodic load-driven rebalancer (requires at least one
  // registered switch; decisions use the latest SwitchLoadReports).
  void EnableRebalancer(const RebalanceConfig& cfg);

  // Invoked just before a meeting is migrated (rebalance or failure), so
  // the substrate/harness can drop and re-signal its members first.
  using MigrationCallback =
      std::function<void(MeetingId meeting, size_t from, size_t to)>;
  void SetMigrationCallback(MigrationCallback cb) {
    migration_cb_ = std::move(cb);
  }

  // ---- failure handling / migration -------------------------------------
  // Marks the switch dead and migrates every meeting it hosts to the
  // least-loaded live standby (no-op per meeting when no standby exists).
  // Members of migrated meetings are dropped — their sessions died with
  // the switch — and must re-Join, which routes them to the standby's SFU.
  // Idempotent: a switch already marked dead is left alone, so heartbeat
  // detection can never migrate a dead switch's meetings twice.
  void OnSwitchDown(size_t switch_index);
  // Brings a switch back (restarted, empty). Meetings migrated away stay
  // on their standby; the revived switch only receives new placements.
  void ReviveSwitch(size_t switch_index);
  bool IsAlive(size_t switch_index) const;
  // Re-homes one meeting onto `target_switch`: ends the old switch-local
  // meeting, creates a fresh one on the target, and drops current members
  // (the caller re-signals them). Increments placements_rebalanced.
  void MigrateMeeting(MeetingId meeting, size_t target_switch);

  size_t switch_count() const { return switches_.size(); }
  // Which switch hosts a meeting (fleet index; SIZE_MAX if unknown).
  size_t PlacementOf(MeetingId meeting) const;
  // (switch index, switch-local meeting id); {SIZE_MAX, 0} if unknown.
  std::pair<size_t, MeetingId> PlacementDetail(MeetingId meeting) const;
  // Current participant load of a switch.
  int LoadOf(size_t switch_index) const;
  int MeetingsOn(size_t switch_index) const;
  net::Ipv4 SfuIpOf(size_t switch_index) const;
  bool IsMember(MeetingId meeting, ParticipantId participant) const;
  // Latest northbound load report (zeros until one arrives).
  const SwitchLoadReport& ReportedLoadOf(size_t switch_index) const;
  Controller& controller(size_t switch_index) {
    return *switches_[switch_index]->controller;
  }
  const FleetStats& stats() const { return stats_; }

 private:
  struct Member {
    ControlChannel* channel = nullptr;
    std::unique_ptr<Controller> controller;
    net::Ipv4 sfu_ip;
    int participants = 0;
    int meetings = 0;
    bool alive = true;
    util::TimeUs last_heartbeat = 0;
    SwitchLoadReport last_report;
    bool report_seen = false;
  };

  // Least-loaded live switch, optionally excluding one index; SIZE_MAX
  // when no live switch qualifies.
  size_t LeastLoaded(size_t exclude = SIZE_MAX) const;
  // Failure-detector tick: declares switches with
  // `heartbeat_miss_threshold` consecutive missed heartbeats dead.
  void CheckHeartbeats();
  // Rebalancer tick: at most one meeting moves per tick.
  void Rebalance();

  // A switch is declared dead after this many silent heartbeat intervals.
  static constexpr int kHeartbeatMissThreshold = 3;

  std::vector<std::unique_ptr<Member>> switches_;
  // Fleet-global meeting ids -> (switch index, switch-local meeting id).
  std::map<MeetingId, std::pair<size_t, MeetingId>> placement_;
  // Currently-joined participants per fleet-global meeting.
  std::map<MeetingId, std::set<ParticipantId>> members_;
  // Rebalancer hysteresis: when each meeting last migrated.
  std::map<MeetingId, util::TimeUs> last_migrated_;
  MeetingId next_meeting_ = 1;
  sim::Scheduler* sched_ = nullptr;  // from the first registered channel
  std::unique_ptr<sim::PeriodicTask> detector_task_;
  std::unique_ptr<sim::PeriodicTask> rebalance_task_;
  RebalanceConfig rebalance_cfg_;
  MigrationCallback migration_cb_;
  FleetStats stats_;
};

}  // namespace scallop::core
