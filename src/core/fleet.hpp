// Fleet controller: one logical controller managing multiple Scallop
// switch data planes (paper Appendix A: "our control/data plane split has
// the potential to simplify deploying many SFU data planes under the
// management of a single controller. Our current system is already
// designed in this way").
//
// Meetings are placed on the least-loaded live switch at creation time;
// the signaling flow is then delegated to that switch's controller.
// Membership is tracked per meeting so load accounting survives double
// leaves and meeting teardown, and so a switch failure can migrate its
// meetings to a live standby (OnSwitchDown/MigrateMeeting) — the
// architectural groundwork for cascading SFUs; the cascading relay itself
// is orthogonal and not implemented, per the paper.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/controller.hpp"

namespace scallop::core {

struct FleetStats {
  uint64_t meetings_placed = 0;
  uint64_t placements_rebalanced = 0;
};

class FleetController : public SignalingServer {
 public:
  // Registers a switch (via its agent) under this controller.
  // Returns the switch's index in the fleet.
  size_t AddSwitch(SwitchAgent& agent, net::Ipv4 sfu_ip);

  // Creates a meeting on the least-loaded live switch.
  MeetingId CreateMeeting();

  // core::SignalingServer — delegates to the owning switch's controller.
  // Leave is guarded by per-meeting membership: leaving a meeting one
  // never joined (or already left) does not skew the switch's load.
  JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                  SignalingClient* client) override;
  void Leave(MeetingId meeting, ParticipantId participant) override;
  // Ends the meeting, draining any still-joined members from the hosting
  // switch's load so freed capacity is visible to LeastLoaded placement.
  void EndMeeting(MeetingId meeting);

  // ---- failure handling / migration -------------------------------------
  // Marks the switch dead and migrates every meeting it hosts to the
  // least-loaded live standby (no-op per meeting when no standby exists).
  // Members of migrated meetings are dropped — their sessions died with
  // the switch — and must re-Join, which routes them to the standby's SFU.
  void OnSwitchDown(size_t switch_index);
  // Brings a switch back (restarted, empty). Meetings migrated away stay
  // on their standby; the revived switch only receives new placements.
  void ReviveSwitch(size_t switch_index);
  bool IsAlive(size_t switch_index) const;
  // Re-homes one meeting onto `target_switch`: ends the old switch-local
  // meeting, creates a fresh one on the target, and drops current members
  // (the caller re-signals them). Increments placements_rebalanced.
  void MigrateMeeting(MeetingId meeting, size_t target_switch);

  size_t switch_count() const { return switches_.size(); }
  // Which switch hosts a meeting (fleet index; SIZE_MAX if unknown).
  size_t PlacementOf(MeetingId meeting) const;
  // (switch index, switch-local meeting id); {SIZE_MAX, 0} if unknown.
  std::pair<size_t, MeetingId> PlacementDetail(MeetingId meeting) const;
  // Current participant load of a switch.
  int LoadOf(size_t switch_index) const;
  int MeetingsOn(size_t switch_index) const;
  net::Ipv4 SfuIpOf(size_t switch_index) const;
  bool IsMember(MeetingId meeting, ParticipantId participant) const;
  Controller& controller(size_t switch_index) {
    return *switches_[switch_index]->controller;
  }
  const FleetStats& stats() const { return stats_; }

 private:
  struct Member {
    std::unique_ptr<Controller> controller;
    net::Ipv4 sfu_ip;
    int participants = 0;
    int meetings = 0;
    bool alive = true;
  };

  // Least-loaded live switch, optionally excluding one index; SIZE_MAX
  // when no live switch qualifies.
  size_t LeastLoaded(size_t exclude = SIZE_MAX) const;

  std::vector<std::unique_ptr<Member>> switches_;
  // Fleet-global meeting ids -> (switch index, switch-local meeting id).
  std::map<MeetingId, std::pair<size_t, MeetingId>> placement_;
  // Currently-joined participants per fleet-global meeting.
  std::map<MeetingId, std::set<ParticipantId>> members_;
  MeetingId next_meeting_ = 1;
  FleetStats stats_;
};

}  // namespace scallop::core
