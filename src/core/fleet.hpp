// Fleet controller: one logical controller managing multiple Scallop
// switch data planes (paper Appendix A: "our control/data plane split has
// the potential to simplify deploying many SFU data planes under the
// management of a single controller. Our current system is already
// designed in this way").
//
// Each switch is reached through its southbound core::ControlChannel:
// commands flow down through a per-switch Controller, and the northbound
// telemetry stream (Heartbeat + SwitchLoadReport) flows back up. On top
// of the telemetry the fleet runs two control loops:
//   * failure detection — a switch whose heartbeats stop for
//     `heartbeat_miss_threshold` intervals is declared dead and its
//     meetings migrate to the least-loaded live standby (exactly once);
//   * load rebalancing (opt-in, EnableRebalancer) — when the *reported*
//     participant load of the busiest live switch exceeds the idlest by
//     the imbalance threshold, one meeting is re-homed via MigrateMeeting,
//     with a per-meeting cooldown so placements don't ping-pong, skipping
//     meetings whose members are mid-renegotiation (failover blackout or
//     a live migration's re-signaling window).
//
// Placement is a first-class plan (core::MeetingPlacement): a pluggable
// PlacementPolicy homes each meeting and participant; when a meeting
// spans switches (CascadePolicy), the fleet programs hub-and-spoke relay
// spans over the southbound relay commands — every remote sender's
// selected stream crosses each inter-switch span exactly once, arriving
// at the downstream switch as a relay sender that local receivers (and
// the downlink filter, decode-target adaptation, NACK translation)
// treat like any uplink (paper Appendix A, cascading SFUs).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "core/federation.hpp"
#include "core/placement.hpp"

namespace scallop::core {

struct FleetStats {
  uint64_t meetings_placed = 0;
  uint64_t placements_rebalanced = 0;  // MigrateMeeting moves + adoptions
  uint64_t rebalance_migrations = 0;   // moves made by the load rebalancer
  uint64_t heartbeats_seen = 0;
  uint64_t heartbeats_missed = 0;  // detector ticks with a stale heartbeat
  uint64_t load_reports_seen = 0;
  uint64_t switches_failed = 0;  // heartbeat-declared deaths
  uint64_t relay_spans_installed = 0;  // spans opened across switches
  uint64_t relay_spans_removed = 0;    // spans torn down (drain or failure)
  uint64_t relay_replans = 0;  // subtree collapses forced by link overload
  // Redundant dual relay trees + make-before-break migration.
  uint64_t secondary_trees_installed = 0;  // disjoint protection chains built
  uint64_t secondary_trees_removed = 0;    // protection chains torn down
  uint64_t tree_flips = 0;            // secondary promoted to primary
  uint64_t hitless_migrations = 0;    // make-before-break re-homes
};

// Load-driven background rebalancer knobs (EnableRebalancer).
struct RebalanceConfig {
  bool enabled = false;
  util::DurationUs interval = util::Seconds(2);
  // Minimum (busiest - idlest) reported participant gap before acting.
  int imbalance_threshold = 2;
  // A meeting that just moved is left alone this long (0 means one
  // rebalance interval), so successive ticks cannot bounce it back while
  // load reports still reflect the pre-move world.
  util::DurationUs cooldown = 0;
};

class FleetController : public SignalingServer,
                        public ControlChannel::EventSink {
 public:
  FleetController();
  ~FleetController() override;

  // Registers a switch via its southbound channel; subscribes to its
  // northbound telemetry and arms the heartbeat failure detector for the
  // channel. Returns the switch's index in the fleet. `id_space` seeds
  // the per-switch controller's participant-id stride (default: the
  // fleet-local index); a federation passes the *global* switch index so
  // ids stay unique across regions.
  size_t AddSwitch(ControlChannel& channel, net::Ipv4 sfu_ip,
                   size_t id_space = SIZE_MAX);
  // Registers a *borrowed* switch: another region's switch this
  // controller may open border spans on. Shares the lender's Controller
  // object (so session and id-space state stay with the owner), takes no
  // telemetry subscription and is never failure-detected or
  // policy-placed here — only the border-span planner targets it.
  // Idempotent per channel; returns the (possibly existing) index.
  size_t AddBorderSwitch(ControlChannel& channel, Controller& controller,
                         net::Ipv4 sfu_ip);
  // Arms the heartbeat failure detector for `channel` if its heartbeat
  // cadence needs one and no equal-or-finer detector is already running.
  // Idempotent — AddSwitch calls it per channel, and shard adoption
  // re-arms it on the adopter.
  void ArmFailureDetector(const ControlChannel& channel);
  // Partitions the global id spaces for federation: this controller
  // mints meeting ids `first_meeting, first_meeting + stride, ...` and
  // relay pseudo-participant ids from `relay_id_base`. Defaults (1, 1,
  // the classic relay base) reproduce the single-controller numbering.
  void ConfigureIdSpace(MeetingId first_meeting, MeetingId meeting_stride,
                        ParticipantId relay_id_base);
  // Whether this controller owns switch `switch_index` (false for
  // borrowed border guests).
  bool OwnsSwitch(size_t switch_index) const {
    return switches_[switch_index]->owned;
  }
  ControlChannel& ChannelOf(size_t switch_index) {
    return *switches_[switch_index]->channel;
  }

  // ---- federation hooks ---------------------------------------------------
  // Owner-side border-span planner: when the placement policy's budget
  // says the home switch is full and the policy has nowhere local left,
  // Join asks the provider for a guest switch (registered via
  // AddBorderSwitch) to span onto; SIZE_MAX declines.
  void SetBorderSpanProvider(std::function<size_t(MeetingId)> provider) {
    border_provider_ = std::move(provider);
  }
  // Controller death: cancels the periodic tasks and refuses new work
  // (signaling throws, telemetry is ignored). State is left intact for a
  // peer to adopt.
  void Shutdown();
  bool IsShutdown() const { return dead_; }
  // Takes over a dead peer's shard: its switches (merging slots for
  // switches both controllers know — border guests — and transferring
  // per-switch Controller ownership where the dead peer owned them), its
  // whole meeting directory (switch indices remapped), and the relay
  // load those meetings registered. Telemetry subscriptions and the
  // failure detector are re-pointed here. Returns the number of meeting
  // records adopted; `old_to_new` (optional) receives the dead
  // controller's local index -> adopter local index map.
  size_t AdoptShardFrom(FleetController& failed,
                        std::vector<size_t>* old_to_new = nullptr);
  // The sharded meeting store (owner's view; see MeetingDirectory).
  MeetingDirectory& directory() { return *directory_; }
  const MeetingDirectory& directory() const { return *directory_; }

  // Swaps the placement policy (default: LeastLoadedPolicy, the classic
  // single-homed behaviour). Takes effect for future placements. The
  // fleet's InterSwitchTopology is bound into the policy so
  // topology-aware planners see the live link-state view.
  void SetPlacementPolicy(std::unique_ptr<PlacementPolicy> policy);
  const PlacementPolicy& placement_policy() const { return *policy_; }

  // ---- inter-switch topology (backbone link-state view) ------------------
  // Default: implicit full mesh with zero latency and unlimited capacity
  // (classic hub-and-spoke plans are unchanged). Declaring a link flips
  // the view to an explicit backbone; relay wiring then registers its
  // estimated per-stream load along each relay's backbone path, and a
  // capacity cut that overloads a link collapses the subtrees riding it
  // so the policy re-plans them (ReplanOverloadedLinks).
  InterSwitchTopology& topology() { return topology_; }
  const InterSwitchTopology& topology() const { return topology_; }
  void ConfigureInterSwitchLink(size_t a, size_t b, double latency_s,
                                double capacity_bps);
  // Mid-run capacity change; triggers a re-plan of overloaded links.
  void SetInterSwitchLinkCapacity(size_t a, size_t b, double capacity_bps);
  // Control-plane estimate of one relayed stream's bandwidth (defaults to
  // the paper's 2.3 Mb/s mean including audio + overhead). Forwarded to
  // the placement policy so admission and registered load always agree.
  void set_relay_stream_bps(double bps);
  double relay_stream_bps() const { return relay_stream_bps_; }
  // Collapses the child subtree of every tree edge whose backbone path
  // crosses an overloaded link, so members re-join and the policy
  // re-plans them with the updated link-state view.
  void ReplanOverloadedLinks();

  // Creates a meeting on the switch the policy picks.
  MeetingId CreateMeeting();

  // core::SignalingServer — homes the participant per the policy (the
  // home switch or a relay span, creating the span and its relay wiring on
  // first use) and delegates signaling to that switch's controller. Leave
  // is guarded by per-meeting membership: leaving a meeting one never
  // joined (or already left) does not skew the switch's load.
  JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                  SignalingClient* client) override;
  void Leave(MeetingId meeting, ParticipantId participant) override;
  // Ends the meeting everywhere (home and spans), draining any
  // still-joined members so freed capacity is visible to placement.
  void EndMeeting(MeetingId meeting);

  // ---- northbound telemetry (ControlChannel::EventSink) -----------------
  void OnHeartbeat(size_t switch_index) override;
  void OnLoadReport(size_t switch_index,
                    const SwitchLoadReport& report) override;

  // Starts the periodic load-driven rebalancer (requires at least one
  // registered switch; decisions use the latest SwitchLoadReports).
  void EnableRebalancer(const RebalanceConfig& cfg);

  // Invoked just before a meeting is migrated (rebalance or failure), so
  // the substrate/harness can drop and re-signal its members first.
  using MigrationCallback =
      std::function<void(MeetingId meeting, size_t from, size_t to)>;
  void SetMigrationCallback(MigrationCallback cb) {
    migration_cb_ = std::move(cb);
  }

  // ---- redundant dual relay trees (opt-in) --------------------------------
  // Enables secondary relay trees over link-disjoint backbone paths and/or
  // make-before-break (hitless) migration. With the config at its defaults
  // the fleet behaves byte-identically to the classic break-before-make
  // controller. Must be set before meetings span; applies to relays
  // installed afterwards.
  void SetRedundancy(const RedundancyConfig& cfg);
  const RedundancyConfig& redundancy() const { return redundancy_; }
  // Fired after a hitless migration completes. Members keep their
  // sessions, so unlike MigrationCallback nothing needs re-signaling; the
  // harness uses it to measure frames lost during the planned move.
  void SetHitlessMigrationCallback(MigrationCallback cb) {
    hitless_cb_ = std::move(cb);
  }

  // Marks meetings as mid-renegotiation (failover blackout): the load
  // rebalancer leaves them alone until a member re-joins. MigrateMeeting
  // freezes its meeting the same way on its own.
  void FreezeMeetings(const std::vector<MeetingId>& meetings);
  bool IsFrozen(MeetingId meeting) const;

  // ---- failure handling / migration -------------------------------------
  // Marks the switch dead. Meetings homed on it migrate to the
  // least-loaded live standby (no-op per meeting when no standby exists);
  // meetings merely spanning onto it have that span collapsed — the
  // span's members re-join and the policy re-plans them onto live
  // switches. Members of migrated/collapsed meetings are dropped — their
  // sessions died with the switch — and must re-Join. Idempotent: a
  // switch already marked dead is left alone, so heartbeat detection can
  // never migrate a dead switch's meetings twice.
  void OnSwitchDown(size_t switch_index);
  // Brings a switch back (restarted, empty). Meetings migrated away stay
  // on their standby; the revived switch only receives new placements.
  void ReviveSwitch(size_t switch_index);
  bool IsAlive(size_t switch_index) const;
  // Re-homes one meeting onto `target_switch`: tears the meeting down
  // everywhere it currently lives (home, spans, relay wiring), creates a
  // fresh single-homed meeting on the target, and drops current members
  // (the caller re-signals them; the policy re-plans spans as they
  // arrive). Increments placements_rebalanced.
  void MigrateMeeting(MeetingId meeting, size_t target_switch);

  // Heterogeneous fleets: declares a switch's relative forwarding
  // capacity. Placement and the rebalancer weigh every load comparison by
  // it (a class-2 switch absorbs twice the participants before looking as
  // busy as a class-1 one); the default 1.0 everywhere keeps decisions
  // byte-identical to the unweighted fleet. Must be positive.
  void SetSwitchCapacity(size_t switch_index, double capacity_class);
  double CapacityClassOf(size_t switch_index) const;

  size_t switch_count() const { return switches_.size(); }
  // The meeting's distribution plan (home switch + relay spans); an
  // invalid placement (home == SIZE_MAX) when unknown.
  MeetingPlacement PlacementOf(MeetingId meeting) const;
  // (home switch index, home-switch-local meeting id); {SIZE_MAX, 0} if
  // unknown.
  std::pair<size_t, MeetingId> PlacementDetail(MeetingId meeting) const;
  // Current participant load of a switch (real participants homed there).
  int LoadOf(size_t switch_index) const;
  int MeetingsOn(size_t switch_index) const;
  net::Ipv4 SfuIpOf(size_t switch_index) const;
  bool IsMember(MeetingId meeting, ParticipantId participant) const;
  // Latest northbound load report (zeros until one arrives).
  const SwitchLoadReport& ReportedLoadOf(size_t switch_index) const;
  Controller& controller(size_t switch_index) {
    return *switches_[switch_index]->controller;
  }
  const FleetStats& stats() const { return stats_; }

  // Enables structured tracing of fleet-level transitions (heartbeat
  // misses, switch deaths, migrations, replans, redundancy flips) on
  // `track` ("fleet" standalone, "region:<r>" under a federation).
  // Southbound command tracing is per-channel (ControlChannel::
  // EnableTrace); this covers the control loops above the channels.
  void set_trace(obs::TraceLog* trace, std::string track) {
    trace_ = trace;
    trace_track_ = std::move(track);
  }
  obs::TraceLog* trace() const { return trace_; }

  // The relay type now lives at namespace scope (core::MeetingRelay, see
  // federation.hpp) so directory records can carry it; the nested name
  // stays valid for existing callers.
  using MeetingRelay = scallop::core::MeetingRelay;
  // Relay wiring currently installed for a meeting (empty when
  // single-homed).
  std::vector<MeetingRelay> RelaysOf(MeetingId meeting) const;
  // Secondary (standby or promoted) relay chains currently planned for a
  // meeting — empty unless redundant trees are on and the meeting spans.
  std::vector<SecondaryTree> SecondariesOf(MeetingId meeting) const;

 private:
  struct Member {
    ControlChannel* channel = nullptr;
    // Set (and owning) for switches this controller manages; border
    // guests borrow the lender's controller instead.
    std::unique_ptr<Controller> owned_controller;
    Controller* controller = nullptr;
    bool owned = true;  // false: borrowed border guest
    net::Ipv4 sfu_ip;
    int participants = 0;
    int meetings = 0;
    // Relative forwarding capacity (SetSwitchCapacity); travels with the
    // Member on shard adoption so heterogeneity survives controller death.
    double capacity_class = 1.0;
    bool alive = true;
    util::TimeUs last_heartbeat = 0;
    SwitchLoadReport last_report;
    bool report_seen = false;
  };

  using MemberInfo = MeetingMemberInfo;
  using MeetingState = MeetingRecord;

  // Switch-local meeting id on `switch_index` (home or a span).
  MeetingId LocalMeetingOn(const MeetingState& st, size_t switch_index) const;
  std::vector<SwitchLoad> Loads() const;
  // Creates the span's switch-local meeting (parented per the policy's
  // ChooseSpanParent) and routes every existing sender's stream into it
  // along the relay tree.
  RelaySpan& EnsureSpan(MeetingState& st, size_t switch_index);
  // Installs (idempotently) the relay carrying `origin`'s stream onto
  // `downstream`, forwarding from `upstream` where the stream is known as
  // `upstream_sender`; wires receive legs for real members already homed
  // downstream and registers the hop's backbone load. Returns the relay
  // sender id on the downstream switch.
  ParticipantId EnsureRelay(MeetingState& st, size_t upstream,
                            size_t downstream, ParticipantId origin,
                            ParticipantId upstream_sender,
                            const SenderIntent& origin_intent);
  // The id `origin`'s stream is known under on `switch_index`: the origin
  // itself where it is homed, its relay sender where a relay terminates,
  // 0 when the stream has not reached that switch.
  ParticipantId SenderIdOn(const MeetingState& st, ParticipantId origin,
                           size_t origin_switch, size_t switch_index) const;
  // Extends `origin`'s relay chain hop by hop along the tree path from its
  // home switch to `target_switch` (idempotent per edge); returns its
  // sender id on the target.
  ParticipantId EnsureSenderAt(MeetingState& st, ParticipantId origin,
                               size_t origin_switch, size_t target_switch,
                               const SenderIntent& origin_intent);
  // Routes `origin`'s stream (homed on `origin_switch`) to every other
  // switch on the plan, per hop along the relay tree — exactly one relay
  // copy per tree edge.
  void RouteSenderEverywhere(MeetingState& st, ParticipantId origin,
                             size_t origin_switch,
                             const SenderIntent& origin_intent);
  // Tears down every relay carrying `origin`'s stream (it left).
  void RemoveSenderRelays(MeetingState& st, ParticipantId origin);
  // Releases the backbone load a relay registered when it was installed.
  void UnregisterRelayLoad(const MeetingRelay& relay);
  // Tears down one span entirely — child spans (its subtree) first, then
  // relay wiring, the span-local meeting, and any members still homed
  // there (their sessions are gone).
  void TearDownSpan(MeetingState& st, size_t switch_index, bool switch_dead);
  void EraseParticipantFromPlacement(MeetingState& st, ParticipantId p);
  ParticipantId NextRelayId();

  // ---- redundant dual relay trees -----------------------------------------
  // Plans and installs a secondary tree for every unprotected relay on the
  // meeting (no-op unless redundant trees are enabled and the backbone is
  // explicit).
  void EnsureProtection(MeetingState& st);
  // Plans a link-disjoint (or maximally disjoint) secondary chain for one
  // relay and installs it hop by hop: interior hops are relay senders in
  // protection meetings, the terminal hop attaches to the primary relay
  // sender as an extra dedup'd source. Every chain leg (and the primary's
  // forwarding leg) gets its decode target pinned to full quality so both
  // trees carry identical (ssrc, seq) streams. Declines quietly when no
  // useful disjoint path exists.
  void PlanSecondary(MeetingState& st, MeetingRelay& r);
  // The standby (non-active) secondary protecting `r`, if any.
  SecondaryTree* SecondaryOf(MeetingState& st, const MeetingRelay& r);
  // The promoted chain currently carrying `r`'s stream, if any.
  SecondaryTree* ActiveOf(MeetingState& st, const MeetingRelay& r);
  // The relay's current physical path: its promoted chain's once flipped,
  // its own backbone path otherwise.
  const std::vector<size_t>& CurrentRelayPath(const MeetingState& st,
                                              const MeetingRelay& r) const;
  // Make-before-break promotion: the downstream merge point flips to the
  // secondary source, the old primary leg drains, and the chain becomes
  // the relay's primary path (its registered load transfers to the relay's
  // backbone-path accounting).
  void FlipRelay(MeetingState& st, MeetingRelay& r, SecondaryTree& tree);
  // Removes one secondary chain's wiring (commands to `dead_switch`, if
  // any, are skipped — its state died with it). Active chains keep their
  // terminal leg and load: both belong to the relay record after a flip.
  void TearDownSecondary(MeetingState& st, const SecondaryTree& tree,
                         size_t dead_switch);
  // Switch-local protection meeting hosting interior chain hops on
  // `switch_index` (created on first use).
  MeetingId ProtectionMeetingOn(MeetingState& st, size_t switch_index);
  // Ends protection meetings no remaining secondary routes through.
  void GcProtectionMeetings(MeetingState& st);
  // Re-homes one meeting without dropping members: spans the target, then
  // re-roots the placement tree there — the old home becomes a
  // member-carrying span that drains as members churn.
  void HitlessMigrate(MeetingState& st, MeetingId meeting, size_t target);

  // Least-loaded live switch, optionally excluding one index; SIZE_MAX
  // when no live switch qualifies.
  size_t LeastLoaded(size_t exclude = SIZE_MAX) const;
  // Failure-detector tick: declares switches with
  // `heartbeat_miss_threshold` consecutive missed heartbeats dead.
  void CheckHeartbeats();
  // Rebalancer tick: at most one meeting moves per tick.
  void Rebalance();

  // A switch is declared dead after this many silent heartbeat intervals.
  static constexpr int kHeartbeatMissThreshold = 3;

  // Null-guarded trace emission; `corr` 0 falls back to the chain id the
  // surrounding control-loop step opened (active_chain_), so nested calls
  // (OnSwitchDown -> MigrateMeeting -> TearDownSpan) stitch into one
  // causal chain without threading ids through every signature.
  void Trace(obs::Category category, const std::string& name,
             uint64_t corr = 0, const std::string& detail = "");

  std::vector<std::unique_ptr<Member>> switches_;
  // This controller's shard of the meeting store (placement, membership,
  // relay wiring, rebalance hysteresis per record).
  std::unique_ptr<MeetingDirectory> directory_;
  MeetingId next_meeting_ = 1;
  // Meeting ids advance by this much per CreateMeeting: 1 standalone, R
  // under an R-region federation (region r mints r+1, r+1+R, ...).
  MeetingId meeting_stride_ = 1;
  // Relay pseudo-participant ids: a dedicated range far above any switch
  // controller's stride (switch i mints from i*1'000'000 + 1), offset so
  // the 16-bit truncations used as replication/egress RIDs cannot collide
  // with real members' truncations on the same switch.
  ParticipantId next_relay_id_ = 0x4000'0000u + 60'000u;
  sim::Scheduler* sched_ = nullptr;  // from the first registered channel
  std::unique_ptr<sim::PeriodicTask> detector_task_;
  // Heartbeat interval the detector currently ticks at (0: not armed);
  // ArmFailureDetector only rebuilds the task for a strictly finer one.
  util::DurationUs detector_interval_ = 0;
  std::unique_ptr<sim::PeriodicTask> rebalance_task_;
  bool dead_ = false;  // Shutdown() called (controller crashed)
  std::function<size_t(MeetingId)> border_provider_;
  RebalanceConfig rebalance_cfg_;
  MigrationCallback migration_cb_;
  MigrationCallback hitless_cb_;
  RedundancyConfig redundancy_;
  std::unique_ptr<PlacementPolicy> policy_;
  InterSwitchTopology topology_;
  // Per-stream relay bandwidth estimate registered on backbone links
  // (paper: 2.3 Mb/s mean 720p stream including audio + overhead).
  double relay_stream_bps_ = 2.3e6;
  FleetStats stats_;
  obs::TraceLog* trace_ = nullptr;
  std::string trace_track_;
  // Correlation id of the causal chain currently being executed (a
  // heartbeat-declared death, a link-cut replan); 0 when idle.
  uint64_t active_chain_ = 0;
};

}  // namespace scallop::core
