// Fleet controller: one logical controller managing multiple Scallop
// switch data planes (paper Appendix A: "our control/data plane split has
// the potential to simplify deploying many SFU data planes under the
// management of a single controller. Our current system is already
// designed in this way").
//
// Meetings are placed on the least-loaded switch at creation time; the
// signaling flow is then delegated to that switch's controller. This is
// the architectural groundwork for cascading SFUs — per the paper, the
// cascading relay itself is orthogonal and not implemented.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/controller.hpp"

namespace scallop::core {

struct FleetStats {
  uint64_t meetings_placed = 0;
  uint64_t placements_rebalanced = 0;
};

class FleetController : public SignalingServer {
 public:
  // Registers a switch (via its agent) under this controller.
  // Returns the switch's index in the fleet.
  size_t AddSwitch(SwitchAgent& agent, net::Ipv4 sfu_ip);

  // Creates a meeting on the least-loaded switch.
  MeetingId CreateMeeting();

  // core::SignalingServer — delegates to the owning switch's controller.
  JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                  SignalingClient* client) override;
  void Leave(MeetingId meeting, ParticipantId participant) override;
  void EndMeeting(MeetingId meeting);

  size_t switch_count() const { return switches_.size(); }
  // Which switch hosts a meeting (fleet index).
  size_t PlacementOf(MeetingId meeting) const;
  // Current participant load of a switch.
  int LoadOf(size_t switch_index) const;
  Controller& controller(size_t switch_index) {
    return *switches_[switch_index]->controller;
  }
  const FleetStats& stats() const { return stats_; }

 private:
  struct Member {
    std::unique_ptr<Controller> controller;
    net::Ipv4 sfu_ip;
    int participants = 0;
    int meetings = 0;
  };

  size_t LeastLoaded() const;

  std::vector<std::unique_ptr<Member>> switches_;
  // Fleet-global meeting ids -> (switch index, switch-local meeting id).
  std::map<MeetingId, std::pair<size_t, MeetingId>> placement_;
  MeetingId next_meeting_ = 1;
  FleetStats stats_;
};

}  // namespace scallop::core
