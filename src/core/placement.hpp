// First-class meeting placement (paper Appendix A, cascading SFUs): the
// controller-computed distribution plan for one meeting. A placement names
// the home switch plus an ordered list of relay spans — each span a
// downstream switch carrying part of the meeting, reached by forwarding
// every remote sender's selected stream across the inter-switch link
// exactly once. SDN multicast work (arXiv:1508.03592, arXiv:1406.0440)
// frames the same idea: the unit of control-plane API is the distribution
// plan, not the per-hop forwarding state.
//
// Which plan a meeting gets is decided by a pluggable PlacementPolicy:
// LeastLoaded reproduces the classic single-homed behaviour byte-for-byte,
// Cascade splits meetings larger than a per-switch participant budget
// across additional switches, hub-and-spoke from the home switch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/topology.hpp"
#include "core/types.hpp"

namespace scallop::core {

// One relay span: a downstream switch carrying part of the meeting. The
// span owns a switch-local meeting on that switch; `participants` are the
// fleet-global ids homed there. `parent` names the switch the span hangs
// off in the meeting's relay tree — SIZE_MAX (the default) means the home
// switch, i.e. classic hub-and-spoke; a topology-aware plan can parent a
// span on another span's switch, growing multi-level trees.
struct RelaySpan {
  size_t switch_index = SIZE_MAX;
  MeetingId local_meeting = 0;
  size_t parent = SIZE_MAX;  // SIZE_MAX: the home switch
  std::vector<ParticipantId> participants;
};

// A meeting's full distribution plan: a relay *tree* rooted at the home
// switch. Single-homed meetings have an empty span list; `home ==
// SIZE_MAX` means the meeting is unknown.
struct MeetingPlacement {
  size_t home = SIZE_MAX;
  MeetingId local_meeting = 0;  // home-switch-local meeting id
  std::vector<ParticipantId> home_participants;
  std::vector<RelaySpan> spans;  // ordered by creation

  bool valid() const { return home != SIZE_MAX; }
  bool spans_switches() const { return !spans.empty(); }

  // The span covering a switch (nullptr for the home switch / unknown).
  const RelaySpan* SpanOn(size_t switch_index) const;

  // ---- relay-tree structure ----------------------------------------------
  // The tree parent of a switch on the plan (SIZE_MAX for the home switch
  // or a switch the plan does not touch).
  size_t ParentOf(size_t switch_index) const;
  // Whether any span hangs off `switch_index` (an interior tree node).
  bool HasChildSpans(size_t switch_index) const;
  // Every switch on the plan, home first, then spans in creation order.
  std::vector<size_t> Switches() const;
  // The tree's (parent, child) edges, one per span, in span order.
  std::vector<std::pair<size_t, size_t>> TreeEdges() const;
  // Hops from the home switch to `switch_index` along parent links (0 for
  // the home switch, SIZE_MAX off-plan).
  size_t DepthOf(size_t switch_index) const;
  // Deepest span (0 when single-homed) — hub-and-spoke plans are depth 1.
  size_t TreeDepth() const;
  // The unique tree path between two on-plan switches (inclusive); empty
  // when either is off-plan.
  std::vector<size_t> TreePath(size_t from, size_t to) const;
};

// What a policy sees of each switch when it decides a placement.
struct SwitchLoad {
  bool alive = false;
  int participants = 0;  // real participants homed on the switch
  int meetings = 0;      // switch-local meetings (homes and spans)
  // Heterogeneous fleets: relative forwarding capacity. A class-2 switch
  // carries twice a class-1 switch's load before looking equally busy; the
  // homogeneous default (everything 1.0) keeps every comparison
  // byte-identical to the unweighted fleet.
  double capacity_class = 1.0;
};

// The fleet's canonical load comparison: least-loaded live switch not in
// `exclude`, SIZE_MAX when none qualifies. Participants dominate
// (streams scale with them); meetings break ties so empty switches fill
// round-robin; both are weighted by the switch's capacity class. Shared
// by the placement policies and the fleet's failover standby selection so
// the two can never disagree.
size_t LeastLoadedLive(const std::vector<SwitchLoad>& loads,
                       const std::vector<size_t>& exclude = {});

// Decides where meetings and participants land. Stateless with respect to
// the fleet: everything it needs arrives through the load vector and the
// meeting's current placement, so policies are trivially swappable.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string Name() const = 0;
  // Gives the policy the controller's inter-switch topology view (called
  // by FleetController::SetPlacementPolicy; the pointer outlives the
  // policy). Topology-blind policies ignore it.
  virtual void BindTopology(const InterSwitchTopology* /*topology*/) {}
  // Keeps the policy's per-stream bandwidth estimate in lockstep with the
  // controller's (FleetController::set_relay_stream_bps), so admission
  // decisions and the load the fleet actually registers agree.
  virtual void SetStreamEstimate(double /*bps*/) {}
  // Redundant dual relay trees: how many tree copies the fleet will
  // register load for per relayed stream (2.0 with redundancy on, the
  // default 1.0 otherwise). Capacity-aware policies scale their
  // per-stream bandwidth estimate by it so admission budgets both trees;
  // topology-blind policies ignore it.
  virtual void SetRedundancyFactor(double /*factor*/) {}
  // Switch to host a new (empty) meeting; SIZE_MAX when no live switch.
  virtual size_t PlaceMeeting(const std::vector<SwitchLoad>& loads) const;
  // Switch to home a joining participant on: the home switch, an existing
  // span, or a fresh switch (creating a new span). Must return a live
  // switch; SIZE_MAX is treated as "home".
  virtual size_t PlaceParticipant(const MeetingPlacement& placement,
                                  const std::vector<SwitchLoad>& loads)
      const = 0;
  // Tree parent for a span about to open on `span_switch`: the home switch
  // or an on-plan span switch. Default is the home switch — classic
  // hub-and-spoke. Returning anything off-plan is treated as "home".
  virtual size_t ChooseSpanParent(const MeetingPlacement& placement,
                                  size_t span_switch) const {
    (void)span_switch;
    return placement.home;
  }
  // Per-switch participant budget the policy fills a switch to before
  // spanning; 0 means unbounded (the policy never overflows on its own).
  // The federation's border-span planner keys off this: when the policy
  // falls back to an already-full home switch, a budget > 0 tells the
  // fleet the overflow is real and worth a cross-region border span.
  virtual int SpanBudget() const { return 0; }
};

// Classic single-homing: meetings land on the least-loaded live switch and
// every participant is homed with the meeting. Byte-for-byte the behaviour
// the fleet had before placements could span.
class LeastLoadedPolicy : public PlacementPolicy {
 public:
  std::string Name() const override { return "least-loaded"; }
  size_t PlaceParticipant(const MeetingPlacement& placement,
                          const std::vector<SwitchLoad>& loads) const override;
};

// Cascading placement: a meeting fills its home switch up to
// `max_participants_per_switch`, then overflows onto relay spans — first
// filling existing spans, then opening a new span on the least-loaded live
// switch not yet carrying the meeting. With nowhere left to span, the home
// switch absorbs the overflow.
class CascadePolicy : public PlacementPolicy {
 public:
  explicit CascadePolicy(int max_participants_per_switch)
      : max_per_switch_(max_participants_per_switch) {}
  std::string Name() const override { return "cascade"; }
  size_t PlaceParticipant(const MeetingPlacement& placement,
                          const std::vector<SwitchLoad>& loads) const override;
  int SpanBudget() const override { return max_per_switch_; }

 private:
  int max_per_switch_;
};

// Bandwidth-aware relay-tree planner: like Cascade it fills the home
// switch up to a per-switch participant budget and overflows onto spans,
// but new spans are chosen and parented against the controller's
// InterSwitchTopology — the next span switch is the one cheapest to
// attach to the current tree (lowest-latency path from any on-plan
// switch, requiring residual relay capacity for the estimated stream
// load when any candidate has it), and the span's parent is the on-plan
// switch that attachment path leaves from. Over a linear backbone
// A—B—C—D this grows the depth-3 chain instead of star-homing everything
// on A. Without a bound topology it degrades to Cascade's hub-and-spoke.
class TopologyAwarePolicy : public PlacementPolicy {
 public:
  TopologyAwarePolicy(int max_participants_per_switch,
                      double stream_estimate_bps = 2.3e6)
      : max_per_switch_(max_participants_per_switch),
        stream_estimate_bps_(stream_estimate_bps) {}
  std::string Name() const override { return "topology-aware"; }
  void BindTopology(const InterSwitchTopology* topology) override {
    topology_ = topology;
  }
  void SetStreamEstimate(double bps) override { stream_estimate_bps_ = bps; }
  void SetRedundancyFactor(double factor) override {
    redundancy_factor_ = factor > 0.0 ? factor : 1.0;
  }
  size_t PlaceParticipant(const MeetingPlacement& placement,
                          const std::vector<SwitchLoad>& loads) const override;
  size_t ChooseSpanParent(const MeetingPlacement& placement,
                          size_t span_switch) const override;
  int SpanBudget() const override { return max_per_switch_; }

 private:
  // Cheapest on-plan switch to attach `candidate` to, and the cost /
  // fit of that attachment; parent == SIZE_MAX when unreachable. A
  // candidate "fits" only when every physical backbone link can absorb
  // the join's *summed* increments — the attachment path gains every
  // member's stream plus the joiner's, and each existing tree edge's
  // path gains the joiner's; paths sharing a physical link add up.
  struct Attachment {
    size_t parent = SIZE_MAX;
    double latency_s = 0.0;
    bool fits = false;
  };
  Attachment BestAttachment(const MeetingPlacement& placement,
                            size_t candidate, int current_members) const;

  int max_per_switch_;
  double stream_estimate_bps_;
  // Load multiplier per relayed stream (2.0 when the fleet plans a
  // disjoint secondary tree per relay; see SetRedundancyFactor).
  double redundancy_factor_ = 1.0;
  const InterSwitchTopology* topology_ = nullptr;
};

// Copyable policy choice for declarative specs (ScenarioSpec /
// TestbedConfig stay value types); Make() builds the policy object.
struct PlacementPolicyConfig {
  enum class Kind { kLeastLoaded, kCascade, kTopologyAware };
  Kind kind = Kind::kLeastLoaded;
  int max_participants_per_switch = 0;  // cascade / topology-aware only

  static PlacementPolicyConfig LeastLoaded() { return {}; }
  static PlacementPolicyConfig Cascade(int max_participants_per_switch) {
    return {Kind::kCascade, max_participants_per_switch};
  }
  // Cascading placement with relay trees planned over the fleet's
  // InterSwitchTopology (path cost + residual link capacity).
  static PlacementPolicyConfig TopologyAware(int max_participants_per_switch) {
    return {Kind::kTopologyAware, max_participants_per_switch};
  }

  std::unique_ptr<PlacementPolicy> Make() const;
  std::string Label() const;
};

}  // namespace scallop::core
