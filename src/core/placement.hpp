// First-class meeting placement (paper Appendix A, cascading SFUs): the
// controller-computed distribution plan for one meeting. A placement names
// the home switch plus an ordered list of relay spans — each span a
// downstream switch carrying part of the meeting, reached by forwarding
// every remote sender's selected stream across the inter-switch link
// exactly once. SDN multicast work (arXiv:1508.03592, arXiv:1406.0440)
// frames the same idea: the unit of control-plane API is the distribution
// plan, not the per-hop forwarding state.
//
// Which plan a meeting gets is decided by a pluggable PlacementPolicy:
// LeastLoaded reproduces the classic single-homed behaviour byte-for-byte,
// Cascade splits meetings larger than a per-switch participant budget
// across additional switches, hub-and-spoke from the home switch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace scallop::core {

// One relay span: a downstream switch carrying part of the meeting. The
// span owns a switch-local meeting on that switch; `participants` are the
// fleet-global ids homed there.
struct RelaySpan {
  size_t switch_index = SIZE_MAX;
  MeetingId local_meeting = 0;
  std::vector<ParticipantId> participants;
};

// A meeting's full distribution plan. Single-homed meetings have an empty
// span list; `home == SIZE_MAX` means the meeting is unknown.
struct MeetingPlacement {
  size_t home = SIZE_MAX;
  MeetingId local_meeting = 0;  // home-switch-local meeting id
  std::vector<ParticipantId> home_participants;
  std::vector<RelaySpan> spans;  // ordered by creation

  bool valid() const { return home != SIZE_MAX; }
  bool spans_switches() const { return !spans.empty(); }

  // The span covering a switch (nullptr for the home switch / unknown).
  const RelaySpan* SpanOn(size_t switch_index) const;
};

// What a policy sees of each switch when it decides a placement.
struct SwitchLoad {
  bool alive = false;
  int participants = 0;  // real participants homed on the switch
  int meetings = 0;      // switch-local meetings (homes and spans)
};

// The fleet's canonical load comparison: least-loaded live switch not in
// `exclude`, SIZE_MAX when none qualifies. Participants dominate
// (streams scale with them); meetings break ties so empty switches fill
// round-robin. Shared by the placement policies and the fleet's failover
// standby selection so the two can never disagree.
size_t LeastLoadedLive(const std::vector<SwitchLoad>& loads,
                       const std::vector<size_t>& exclude = {});

// Decides where meetings and participants land. Stateless with respect to
// the fleet: everything it needs arrives through the load vector and the
// meeting's current placement, so policies are trivially swappable.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string Name() const = 0;
  // Switch to host a new (empty) meeting; SIZE_MAX when no live switch.
  virtual size_t PlaceMeeting(const std::vector<SwitchLoad>& loads) const;
  // Switch to home a joining participant on: the home switch, an existing
  // span, or a fresh switch (creating a new span). Must return a live
  // switch; SIZE_MAX is treated as "home".
  virtual size_t PlaceParticipant(const MeetingPlacement& placement,
                                  const std::vector<SwitchLoad>& loads)
      const = 0;
};

// Classic single-homing: meetings land on the least-loaded live switch and
// every participant is homed with the meeting. Byte-for-byte the behaviour
// the fleet had before placements could span.
class LeastLoadedPolicy : public PlacementPolicy {
 public:
  std::string Name() const override { return "least-loaded"; }
  size_t PlaceParticipant(const MeetingPlacement& placement,
                          const std::vector<SwitchLoad>& loads) const override;
};

// Cascading placement: a meeting fills its home switch up to
// `max_participants_per_switch`, then overflows onto relay spans — first
// filling existing spans, then opening a new span on the least-loaded live
// switch not yet carrying the meeting. With nowhere left to span, the home
// switch absorbs the overflow.
class CascadePolicy : public PlacementPolicy {
 public:
  explicit CascadePolicy(int max_participants_per_switch)
      : max_per_switch_(max_participants_per_switch) {}
  std::string Name() const override { return "cascade"; }
  size_t PlaceParticipant(const MeetingPlacement& placement,
                          const std::vector<SwitchLoad>& loads) const override;

 private:
  int max_per_switch_;
};

// Copyable policy choice for declarative specs (ScenarioSpec /
// TestbedConfig stay value types); Make() builds the policy object.
struct PlacementPolicyConfig {
  enum class Kind { kLeastLoaded, kCascade };
  Kind kind = Kind::kLeastLoaded;
  int max_participants_per_switch = 0;  // cascade only

  static PlacementPolicyConfig LeastLoaded() { return {}; }
  static PlacementPolicyConfig Cascade(int max_participants_per_switch) {
    return {Kind::kCascade, max_participants_per_switch};
  }

  std::unique_ptr<PlacementPolicy> Make() const;
  std::string Label() const;
};

}  // namespace scallop::core
