// Replication-tree construction and migration (paper §6.1 / Fig. 11).
//
// Designs:
//  - two-party: no tree; the stream entry names the peer directly.
//  - NRA: one tree shared by m=2 meetings. One L1 node per participant
//    (rid = participant id, port = participant egress); meeting slots are
//    separated by L1-XIDs; the sender's own copy is suppressed by the
//    RID + L2-XID rule.
//  - RA-R: q=3 trees per meeting group, one per cumulative layer set;
//    tree_l holds the receivers whose decode target is >= l. A packet of
//    temporal layer l invokes tree mgid_base+l, so tree membership itself
//    performs the SVC filtering.
//  - RA-SR: q trees per *sender pair* within a meeting; the two senders'
//    receiver branches share each tree and are separated by L1-XIDs.
//
// Migration is make-before-break: new trees are built, stream entries are
// repointed, then the old trees are freed (paper's three-step process).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/dataplane.hpp"
#include "core/types.hpp"
#include "switchsim/pre.hpp"

namespace scallop::core {

struct MemberSpec {
  ParticipantId id = 0;
  net::Endpoint media_src;  // client endpoint media arrives from
  uint32_t video_ssrc = 0;
  uint32_t audio_ssrc = 0;
  bool sends_video = false;
  bool sends_audio = false;
  // Decode target this member wants *from* each sender (participant id ->
  // 0..2). Missing entries default to 2 (full rate).
  std::map<ParticipantId, int> decode_targets;

  int DtFor(ParticipantId sender) const {
    auto it = decode_targets.find(sender);
    return it == decode_targets.end() ? 2 : it->second;
  }
};

struct MeetingSpec {
  MeetingId id = 0;
  std::vector<MemberSpec> members;
};

struct TreeManagerStats {
  uint64_t reconfigs = 0;
  uint64_t migrations = 0;       // design changes (make-before-break)
  uint64_t trees_built = 0;
  uint64_t nodes_added = 0;
};

class TreeManager {
 public:
  TreeManager(DataPlaneProgram& dp, switchsim::ReplicationEngine& pre)
      : dp_(dp), pre_(pre) {}

  // Decision rule mapping a meeting's decode-target matrix onto a design.
  static TreeDesign DesignFor(const MeetingSpec& spec);

  // Builds or updates forwarding state for the meeting; installs/updates
  // the data plane's stream entries. Returns the design in effect.
  TreeDesign Reconfigure(const MeetingSpec& spec);

  void RemoveMeeting(MeetingId id);

  std::optional<TreeDesign> CurrentDesign(MeetingId id) const;
  const TreeManagerStats& stats() const { return stats_; }

 private:
  struct Group {  // m=2 meeting pairing for NRA / RA-R
    TreeDesign design;
    std::vector<uint32_t> mgids;  // 1 (NRA) or 3 (RA-R)
    MeetingId slots[2] = {0, 0};
  };
  struct MeetingRecord {
    TreeDesign design;
    MeetingSpec spec;
    uint32_t group_id = 0;            // NRA / RA-R
    uint8_t slot = 0;                 // 1 or 2 within the group
    std::vector<uint32_t> own_mgids;  // RA-SR blocks owned by the meeting
    std::vector<std::pair<uint32_t, uint32_t>> nodes;  // (mgid, node_id)
  };

  uint32_t AllocMgid();
  void FreeMgid(uint32_t mgid);
  uint32_t NextNodeId() { return next_node_id_++; }

  void InstallStreams(const MeetingSpec& spec, TreeDesign design,
                      const std::map<ParticipantId, uint32_t>& sender_mgid,
                      const std::map<ParticipantId, uint16_t>& sender_xid);
  void TearDown(MeetingRecord& rec);
  void BuildNRA(const MeetingSpec& spec, MeetingRecord& rec);
  void BuildRAR(const MeetingSpec& spec, MeetingRecord& rec);
  void BuildRASR(const MeetingSpec& spec, MeetingRecord& rec);
  void BuildTwoParty(const MeetingSpec& spec, MeetingRecord& rec);
  Group* FindOpenGroup(TreeDesign design);

  DataPlaneProgram& dp_;
  switchsim::ReplicationEngine& pre_;
  std::map<MeetingId, MeetingRecord> meetings_;
  std::map<uint32_t, Group> groups_;
  uint32_t next_group_id_ = 1;
  uint32_t next_mgid_ = 1;
  std::vector<uint32_t> free_mgids_;
  uint32_t next_node_id_ = 1;
  TreeManagerStats stats_;
};

}  // namespace scallop::core
