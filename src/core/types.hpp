// Shared identifiers and table-entry types for Scallop's control and data
// planes.
#pragma once

#include <cstdint>
#include <functional>

#include "core/seqrewrite.hpp"
#include "net/address.hpp"

namespace scallop::core {

using MeetingId = uint32_t;
using ParticipantId = uint32_t;

// Replication-tree designs (paper §6.1 / Fig. 11).
enum class TreeDesign : uint8_t {
  kTwoParty,  // unicast fast path, no replication tree
  kNRA,       // non-rate-adapted: one tree per m meetings
  kRAR,       // receiver-specific rate adaptation: q cumulative-layer trees
  kRASR,      // sender-receiver-specific: q trees per sender pair
};
const char* TreeDesignName(TreeDesign d);

// ---- Data-plane table entry types ----

// Key of the stream index table: who is sending this RTP stream.
struct StreamKey {
  net::Endpoint src;
  uint32_t ssrc = 0;
  bool operator==(const StreamKey&) const = default;
};

// Value: meeting context plus the PRE invocation parameters installed by
// the tree manager.
struct StreamEntry {
  MeetingId meeting = 0;
  ParticipantId sender = 0;
  bool is_video = false;
  TreeDesign design = TreeDesign::kNRA;
  // Two-party: the peer's egress id. Otherwise: base MGID (layer trees are
  // mgid_base + layer for kRAR/kRASR).
  uint32_t peer_egress = 0;
  uint32_t mgid_base = 0;
  uint16_t l1_xid = 0;  // set on the packet to exclude the other slot
  uint16_t rid = 0;     // sender's own rid (L2 self-prune)
  uint16_t l2_xid = 0;  // maps to the sender's own egress port
  // Redundant dual relay trees: which tree delivered this entry's copies
  // (0 = primary) and whether arrivals must pass the (origin, seq)
  // duplicate-elimination window before forwarding. Both stay at their
  // defaults whenever redundancy is off.
  uint8_t tree = 0;
  bool dedup = false;
};

// Egress rewrite table: (original source endpoint, replica RID) -> the
// receiver-specific addressing (paper §6.1 "Addressing replicated packets").
struct EgressKey {
  net::Endpoint orig_src;
  uint16_t rid = 0;
  bool operator==(const EgressKey&) const = default;
};

struct EgressEntry {
  net::Endpoint dst;      // receiver's client endpoint for this leg
  net::Endpoint sfu_src;  // SFU-side endpoint presented to the receiver
  ParticipantId receiver = 0;
  // Cascaded meetings: this replica leaves for another switch's SFU (the
  // receiver is a relay pseudo-participant standing in for it), so the
  // data plane accounts it as inter-switch relay traffic.
  bool is_relay = false;
};

// Per (video ssrc, receiver) SVC filtering and sequence rewriting.
struct SvcKey {
  uint32_t ssrc = 0;
  ParticipantId receiver = 0;
  bool operator==(const SvcKey&) const = default;
};

struct SvcEntry {
  int decode_target = 2;  // 0..2; 2 = full rate
  SkipCadence cadence;
  // Index into the data plane's rewriter state; kNoRewriter = pass-through.
  uint32_t rewriter_index = UINT32_MAX;
  bool filter_in_egress = false;  // two-party mode drops by template here
};

// Feedback legs: keyed by the SFU-local UDP port the receiver talks to.
struct FeedbackEntry {
  MeetingId meeting = 0;
  ParticipantId receiver = 0;
  ParticipantId sender = 0;   // which sender this leg reports on
  uint16_t sender_rid = 0;    // egress-rewrite rid toward the sender
  bool remb_allowed = false;  // best-downlink filter verdict (§5.3)
  uint32_t video_ssrc = 0;    // sender's video ssrc (NACK translation)
  bool is_uplink = false;     // the sender's own media leg
};

}  // namespace scallop::core

namespace std {
template <>
struct hash<scallop::core::StreamKey> {
  size_t operator()(const scallop::core::StreamKey& k) const noexcept {
    return std::hash<scallop::net::Endpoint>{}(k.src) ^
           (static_cast<size_t>(k.ssrc) * 0x9e3779b97f4a7c15ULL);
  }
};
template <>
struct hash<scallop::core::EgressKey> {
  size_t operator()(const scallop::core::EgressKey& k) const noexcept {
    return std::hash<scallop::net::Endpoint>{}(k.orig_src) ^
           (static_cast<size_t>(k.rid) * 0x9e3779b97f4a7c15ULL);
  }
};
template <>
struct hash<scallop::core::SvcKey> {
  size_t operator()(const scallop::core::SvcKey& k) const noexcept {
    return (static_cast<size_t>(k.ssrc) << 20) ^ k.receiver;
  }
};
}  // namespace std
