// Scallop's centralized controller (paper §5.1): the signaling server.
// It terminates SDP offer/answer, rewrites ICE candidates so the SFU
// appears as each participant's sole peer, tracks sessions, and programs
// the switch agent through the southbound core::ControlChannel. Per-
// participant-pair receive legs (the paper's per-participant WebRTC stream
// split, §5.3) are negotiated through the SignalingClient callbacks, which
// stand in for the WebSocket renegotiation channel.
#pragma once

#include <map>
#include <string>

#include "core/control_channel.hpp"
#include "sdp/sdp.hpp"

namespace scallop::core {

// Implemented by clients; the controller calls these during (re)negotiation.
class SignalingClient {
 public:
  virtual ~SignalingClient() = default;
  // Asks the client to open a local socket for media from `sender`;
  // returns the client-side endpoint of the new leg.
  virtual net::Endpoint AllocateLocalLeg(ParticipantId sender) = 0;
  // Completes the leg: media from `sender` (with these ssrcs) will arrive
  // from `sfu_endpoint`; feedback for it goes there too.
  virtual void OnRemoteLegReady(ParticipantId sender, uint32_t video_ssrc,
                                uint32_t audio_ssrc,
                                net::Endpoint sfu_endpoint) = 0;
  virtual void OnRemoteSenderLeft(ParticipantId sender) = 0;
};

// Sender intent parsed from an SDP offer: which media the participant
// sends, with which ssrcs, from where. Shared by Controller::Join and the
// FleetController's member bookkeeping so the two can never drift.
struct SenderIntent {
  net::Endpoint media_src;
  uint32_t video_ssrc = 0;
  uint32_t audio_ssrc = 0;
  bool sends_video = false;
  bool sends_audio = false;
};
SenderIntent ParseSenderIntent(const sdp::SessionDescription& offer);

struct ControllerStats {
  uint64_t meetings_created = 0;
  uint64_t joins = 0;
  uint64_t leaves = 0;
  uint64_t sdp_messages = 0;
  uint64_t candidates_rewritten = 0;
  uint64_t legs_negotiated = 0;
};

// Abstract signaling server: implemented by Scallop's Controller, by the
// software-SFU baseline, and by the FleetController (which delegates to a
// per-switch Controller after placement) so the same Peer client works
// against all of them — it is also the signaling seam the
// testbed::Backend interface hands to the scenario harness.
class SignalingServer {
 public:
  virtual ~SignalingServer() = default;

  struct JoinResult {
    ParticipantId participant = 0;
    sdp::SessionDescription answer;
    net::Endpoint uplink_sfu;  // where the client sends its media + STUN
  };
  virtual JoinResult Join(MeetingId meeting,
                          const sdp::SessionDescription& offer,
                          SignalingClient* client) = 0;
  virtual void Leave(MeetingId meeting, ParticipantId participant) = 0;
};

class Controller : public SignalingServer {
 public:
  // `first_participant` offsets this controller's participant-id space;
  // a fleet gives each switch's controller a disjoint range so ids stay
  // globally unique across switches (a stale signaling message for a
  // participant from one switch can never name a live one on another).
  Controller(ControlChannel& channel, net::Ipv4 sfu_ip,
             ParticipantId first_participant = 1)
      : channel_(channel),
        sfu_ip_(sfu_ip),
        next_participant_(first_participant) {}

  MeetingId CreateMeeting();
  // Ends the meeting: every remaining member is told about every peer
  // sender's departure (so clients tear down their receive legs) before
  // the switch-side state is removed.
  void EndMeeting(MeetingId id);

  // `offer` carries the client's media sections and host candidates.
  JoinResult Join(MeetingId meeting, const sdp::SessionDescription& offer,
                  SignalingClient* client) override;
  void Leave(MeetingId meeting, ParticipantId participant) override;

  // Southbound passthrough for scripted experiments: pins a decode target
  // over the control channel instead of poking the agent in-process.
  void ForceDecodeTarget(MeetingId meeting, ParticipantId receiver,
                         ParticipantId sender, int dt);

  const ControllerStats& stats() const { return stats_; }
  ControlChannel& channel() { return channel_; }

 private:
  struct Member {
    ParticipantId id;
    SignalingClient* client;
    uint32_t video_ssrc = 0;
    uint32_t audio_ssrc = 0;
    bool sends_video = false;
    bool sends_audio = false;
  };

  ControlChannel& channel_;
  net::Ipv4 sfu_ip_;
  MeetingId next_meeting_ = 1;
  ParticipantId next_participant_;
  std::map<MeetingId, std::map<ParticipantId, Member>> meetings_;
  ControllerStats stats_;
};

}  // namespace scallop::core
