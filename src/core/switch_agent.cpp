#include "core/switch_agent.hpp"

#include <algorithm>

#include "rtp/classifier.hpp"
#include "rtp/rtp_packet.hpp"

namespace scallop::core {

SwitchAgent::SwitchAgent(sim::Scheduler& sched, DataPlaneProgram& dp,
                         const AgentConfig& cfg)
    : sched_(sched),
      dp_(dp),
      cfg_(cfg),
      trees_(dp, dp.sw().pre()),
      next_port_(cfg.first_sfu_port) {
  dp_.sw().SetCpuHandler([this](net::PacketPtr pkt) {
    OnCpuPacket(std::move(pkt));
  });
}

void SwitchAgent::OnCpuPacket(net::PacketPtr pkt) {
  ++stats_.cpu_packets;
  switch (rtp::Classify(pkt->payload_span())) {
    case rtp::PayloadKind::kStun:
      HandleStun(*pkt);
      return;
    case rtp::PayloadKind::kRtcp:
      HandleRtcp(*pkt);
      return;
    case rtp::PayloadKind::kRtp:
      HandleKeyframeDd(*pkt);
      return;
    default:
      return;
  }
}

void SwitchAgent::HandleStun(const net::Packet& pkt) {
  auto msg = stun::StunMessage::Parse(pkt.payload_span());
  if (!msg.has_value() || !msg->is_request()) return;
  ++stats_.stun_handled;
  stun::StunMessage resp = stun::MakeBindingResponse(*msg, pkt.src);
  auto out = net::MakePacket(pkt.dst, pkt.src, resp.Serialize());
  dp_.sw().InjectFromCpu(std::move(out));
}

void SwitchAgent::HandleRtcp(const net::Packet& pkt) {
  auto msgs = rtp::ParseCompound(pkt.payload_span());
  if (!msgs.has_value()) return;

  // Identify the leg the feedback arrived on.
  const FeedbackEntry* fb = dp_.MutableFeedback(pkt.dst.port);

  for (const auto& msg : *msgs) {
    if (const auto* sr = std::get_if<rtp::SenderReport>(&msg)) {
      ++stats_.sr_processed;
      SenderRate& sr_state = sender_rates_[sr->sender_ssrc];
      util::TimeUs now = sched_.now();
      if (sr_state.seen && now > sr_state.last_time) {
        double bits =
            8.0 * static_cast<double>(sr->octet_count - sr_state.last_octets);
        double secs = util::ToSeconds(now - sr_state.last_time);
        if (secs > 0 && bits >= 0) sr_state.rate.Add(bits / secs);
      }
      sr_state.seen = true;
      sr_state.last_octets = sr->octet_count;
      sr_state.last_time = now;
    } else if (std::get_if<rtp::ReceiverReport>(&msg)) {
      ++stats_.rr_processed;
    } else if (const auto* remb = std::get_if<rtp::Remb>(&msg)) {
      ++stats_.remb_processed;
      if (fb != nullptr && !fb->is_uplink) {
        auto pit = participants_.find(fb->receiver);
        if (pit != participants_.end()) {
          ProcessRemb(pit->second, fb->sender, remb->bitrate_bps);
        }
      }
    } else if (std::get_if<rtp::Nack>(&msg)) {
      ++stats_.nack_seen;
    } else if (std::get_if<rtp::Pli>(&msg)) {
      ++stats_.pli_seen;
    }
  }
}

void SwitchAgent::HandleKeyframeDd(const net::Packet& pkt) {
  // Extended dependency descriptor: validate the template structure and
  // re-anchor skip cadences for this sender's stream.
  auto parsed = rtp::RtpPacket::Parse(pkt.payload_span());
  if (!parsed.has_value()) return;
  const rtp::RtpExtension* ext =
      parsed->FindExtension(dp_.config().dd_extension_id);
  if (ext == nullptr) return;
  auto dd = av1::DependencyDescriptor::Parse(ext->data);
  if (!dd.has_value() || !dd->structure.has_value()) return;
  ++stats_.keyframe_dd_processed;

  auto sit = ssrc_to_sender_.find(parsed->ssrc);
  if (sit == ssrc_to_sender_.end()) return;
  ParticipantId sender = sit->second;
  uint16_t anchor = dd->frame_number;
  dd_anchor_[sender] = anchor;

  // Re-anchor every receiver's cadence for this sender.
  auto pit = participants_.find(sender);
  if (pit == participants_.end()) return;
  auto mit = meetings_.find(pit->second.meeting);
  if (mit == meetings_.end()) return;
  for (ParticipantId r : mit->second.members) {
    if (r == sender) continue;
    Participant& recv = participants_.at(r);
    auto ps = recv.by_sender.find(sender);
    if (ps == recv.by_sender.end() || !ps->second.rewriter_index) continue;
    int dt = DecodeTargetOf(r, sender);
    SkipCadence cadence = SkipCadence::ForDecodeTarget(dt, anchor);
    dp_.ConfigureRewriter(*ps->second.rewriter_index, cadence);
    SvcEntry* svc = dp_.MutableSvc(SvcKey{pit->second.video_ssrc, r});
    if (svc != nullptr) svc->cadence = cadence;
    ++stats_.dataplane_writes;
  }
}

void SwitchAgent::CreateMeeting(MeetingId id) {
  // Idempotent: the control channel may retransmit a command whose ack
  // was lost, and a duplicate create must not wipe a populated meeting.
  meetings_.try_emplace(id);
}

void SwitchAgent::RemoveMeeting(MeetingId id) {
  auto it = meetings_.find(id);
  if (it == meetings_.end()) return;
  std::vector<ParticipantId> members = it->second.members;
  for (ParticipantId p : members) RemoveParticipant(id, p);
  trees_.RemoveMeeting(id);
  meetings_.erase(id);
}

uint16_t SwitchAgent::AddParticipant(MeetingId meeting, ParticipantId id,
                                     net::Endpoint media_src,
                                     uint32_t video_ssrc, uint32_t audio_ssrc,
                                     bool sends_video, bool sends_audio,
                                     uint16_t assigned_port) {
  Participant p;
  p.id = id;
  p.meeting = meeting;
  p.media_src = media_src;
  p.uplink_port = assigned_port != 0 ? assigned_port : next_port_++;
  p.video_ssrc = video_ssrc;
  p.audio_ssrc = audio_ssrc;
  p.sends_video = sends_video;
  p.sends_audio = sends_audio;
  participants_[id] = p;
  meetings_[meeting].members.push_back(id);
  if (sends_video) ssrc_to_sender_[video_ssrc] = id;
  if (sends_audio) ssrc_to_sender_[audio_ssrc] = id;

  FeedbackEntry fb;
  fb.meeting = meeting;
  fb.receiver = id;
  fb.sender = id;
  fb.is_uplink = true;
  fb.sender_rid = static_cast<uint16_t>(id);
  dp_.InstallFeedback(p.uplink_port, fb);
  ++stats_.dataplane_writes;

  RebuildMeeting(meeting);
  return p.uplink_port;
}

uint16_t SwitchAgent::AddRelaySender(MeetingId meeting, ParticipantId id,
                                     net::Endpoint upstream_src,
                                     uint32_t video_ssrc, uint32_t audio_ssrc,
                                     bool sends_video, bool sends_audio,
                                     uint16_t assigned_port) {
  // A remote sender homed on another switch: its "client endpoint" is the
  // upstream switch's relay leg, so the stream table, tree manager and
  // keyframe re-anchoring treat the relayed stream like any uplink. The
  // assigned port is the address relayed media is sent to.
  // Idempotent under retransmission: a duplicate install (same relay id,
  // already registered from the same upstream) must not double-count the
  // relay or re-register the participant, wiping its legs.
  auto existing = participants_.find(id);
  if (existing != participants_.end() && existing->second.is_relay &&
      existing->second.media_src == upstream_src) {
    return existing->second.uplink_port;
  }
  uint16_t port = AddParticipant(meeting, id, upstream_src, video_ssrc,
                                 audio_ssrc, sends_video, sends_audio,
                                 assigned_port);
  participants_[id].is_relay = true;
  ++relay_count_;
  ++stats_.relay_senders;
  return port;
}

uint16_t SwitchAgent::AddRelayLeg(MeetingId meeting,
                                  ParticipantId relay_receiver,
                                  ParticipantId sender,
                                  net::Endpoint downstream_sfu,
                                  uint16_t assigned_port) {
  // Lost-command semantics: a relay leg naming a sender this switch never
  // learned about (its install was lost on the channel) must be a pure
  // no-op, like any other command referencing unknown state — no orphan
  // pseudo-receiver, no stats.
  uint16_t port = assigned_port != 0 ? assigned_port : next_port_++;
  if (participants_.find(sender) == participants_.end()) return port;
  // Idempotent under retransmission: the pseudo-receiver already carrying
  // this sender's leg means the first copy landed — re-installing would
  // leak the leg's rewriter and double-count relay stats.
  auto rcv = participants_.find(relay_receiver);
  if (rcv != participants_.end()) {
    auto ps = rcv->second.by_sender.find(sender);
    if (ps != rcv->second.by_sender.end() && ps->second.leg) {
      return ps->second.leg->sfu_port;
    }
  }
  // The downstream switch's stand-in: a receive-only pseudo-participant
  // whose "client endpoint" is the downstream SFU's relay uplink. Its leg
  // is a normal receive leg — rewriter, SVC filter, REMB/NACK feedback
  // path — so the relayed stream is the sender's *selected* stream and
  // sequence rewriting stays gap-free across the hop.
  if (participants_.find(relay_receiver) == participants_.end()) {
    Participant p;
    p.id = relay_receiver;
    p.meeting = meeting;
    p.media_src = downstream_sfu;
    p.is_relay = true;
    participants_[relay_receiver] = p;
    meetings_[meeting].members.push_back(relay_receiver);
    ++relay_count_;
  }
  ++stats_.relay_legs;
  return AddRecvLeg(meeting, relay_receiver, sender, downstream_sfu, port);
}

void SwitchAgent::RemoveRelaySpan(MeetingId meeting,
                                  const std::vector<ParticipantId>& relay_ids) {
  for (ParticipantId id : relay_ids) RemoveParticipant(meeting, id);
}

void SwitchAgent::AddRelaySource(MeetingId meeting, ParticipantId id,
                                 net::Endpoint secondary_src,
                                 int dedup_window) {
  (void)meeting;
  auto it = participants_.find(id);
  if (it == participants_.end() || !it->second.is_relay) return;
  Participant& p = it->second;
  if (secondary_src == p.media_src) return;
  for (const net::Endpoint& src : p.extra_srcs) {
    if (src == secondary_src) return;  // idempotent under retransmission
  }
  p.extra_srcs.push_back(secondary_src);
  p.dedup_window = dedup_window;
  ++stats_.relay_sources;
  SyncRelaySources(p);
}

void SwitchAgent::PromoteRelaySource(MeetingId meeting, ParticipantId id,
                                     net::Endpoint new_src) {
  auto it = participants_.find(id);
  if (it == participants_.end() || !it->second.is_relay) return;
  Participant& p = it->second;
  if (p.media_src == new_src) return;
  auto src_it = std::find(p.extra_srcs.begin(), p.extra_srcs.end(), new_src);
  // Promoting a source this switch never learned about (its attach was
  // lost on the channel) is a no-op, like any command naming unknown
  // state.
  if (src_it == p.extra_srcs.end()) return;
  p.extra_srcs.erase(src_it);

  // The old primary path is dying (that is why we flip): drop its stream
  // keys outright rather than demoting it to a secondary.
  const net::Endpoint old_src = p.media_src;
  if (p.sends_video) dp_.RemoveStream(StreamKey{old_src, p.video_ssrc});
  if (p.sends_audio) dp_.RemoveStream(StreamKey{old_src, p.audio_ssrc});
  p.media_src = new_src;
  ++stats_.relay_promotions;
  ++stats_.dataplane_writes;

  auto mit = meetings_.find(meeting);
  if (mit != meetings_.end()) {
    for (ParticipantId r : mit->second.members) {
      if (r == id) continue;
      Participant& recv = participants_.at(r);
      auto ps = recv.by_sender.find(id);
      if (ps == recv.by_sender.end() || !ps->second.leg) continue;
      // Old-source media egress dies with the old tree; the new source's
      // mirror (installed at attach time) is already live, so the flip
      // never leaves a gap between removal and install.
      dp_.RemoveEgress(EgressKey{old_src, static_cast<uint16_t>(r)});
      // Re-aim the receivers' feedback path at the surviving upstream.
      EgressEntry fb_out;
      fb_out.dst = new_src;
      fb_out.sfu_src = net::Endpoint{cfg_.sfu_ip, p.uplink_port};
      fb_out.receiver = id;
      dp_.InstallEgress(
          EgressKey{ps->second.leg->client, static_cast<uint16_t>(id)},
          fb_out);
    }
  }

  if (p.extra_srcs.empty()) {
    // Sole source again: retire the dedup window so steady state after
    // the flip matches an unprotected relay.
    auto clear = [&](uint32_t ssrc) {
      dp_.RemoveDedup(ssrc);
      StreamEntry* se = dp_.MutableStream(StreamKey{p.media_src, ssrc});
      if (se != nullptr) {
        se->dedup = false;
        se->tree = 0;
      }
    };
    if (p.sends_video) clear(p.video_ssrc);
    if (p.sends_audio) clear(p.audio_ssrc);
  }
  // Reconfigure reinstalls primary stream entries under the new source
  // key (tree = 0), and SyncRelaySources re-mirrors any remaining
  // secondaries.
  RebuildMeeting(meeting);
}

void SwitchAgent::RemoveRelaySource(MeetingId meeting, ParticipantId id,
                                    net::Endpoint src) {
  auto it = participants_.find(id);
  if (it == participants_.end()) return;
  Participant& p = it->second;
  auto src_it = std::find(p.extra_srcs.begin(), p.extra_srcs.end(), src);
  if (src_it == p.extra_srcs.end()) return;
  p.extra_srcs.erase(src_it);

  if (p.sends_video) dp_.RemoveStream(StreamKey{src, p.video_ssrc});
  if (p.sends_audio) dp_.RemoveStream(StreamKey{src, p.audio_ssrc});
  auto mit = meetings_.find(meeting);
  if (mit != meetings_.end()) {
    for (ParticipantId r : mit->second.members) {
      if (r != id) dp_.RemoveEgress(EgressKey{src, static_cast<uint16_t>(r)});
    }
  }
  if (p.extra_srcs.empty()) {
    auto clear = [&](uint32_t ssrc) {
      dp_.RemoveDedup(ssrc);
      StreamEntry* se = dp_.MutableStream(StreamKey{p.media_src, ssrc});
      if (se != nullptr) se->dedup = false;
    };
    if (p.sends_video) clear(p.video_ssrc);
    if (p.sends_audio) clear(p.audio_ssrc);
  }
  ++stats_.dataplane_writes;
}

void SwitchAgent::SyncRelaySources(Participant& p) {
  if (p.extra_srcs.empty()) return;
  auto sync_ssrc = [&](uint32_t ssrc) {
    StreamEntry* primary = dp_.MutableStream(StreamKey{p.media_src, ssrc});
    if (primary == nullptr) return;
    primary->dedup = true;
    primary->tree = 0;
    dp_.InstallDedup(ssrc, p.dedup_window);
    StreamEntry mirror = *primary;
    mirror.tree = 1;
    for (const net::Endpoint& src : p.extra_srcs) {
      dp_.InstallStream(StreamKey{src, ssrc}, mirror);
    }
  };
  if (p.sends_video) sync_ssrc(p.video_ssrc);
  if (p.sends_audio) sync_ssrc(p.audio_ssrc);

  // Media egress is keyed by (original source, rid): every receiver leg
  // installed under the primary source needs a twin under each secondary
  // or the second tree's copies would die at egress lookup.
  auto mit = meetings_.find(p.meeting);
  if (mit == meetings_.end()) return;
  for (ParticipantId r : mit->second.members) {
    if (r == p.id) continue;
    const Participant& recv = participants_.at(r);
    auto ps = recv.by_sender.find(p.id);
    if (ps == recv.by_sender.end() || !ps->second.leg) continue;
    EgressEntry media_out;
    media_out.dst = ps->second.leg->client;
    media_out.sfu_src = net::Endpoint{cfg_.sfu_ip, ps->second.leg->sfu_port};
    media_out.receiver = r;
    media_out.is_relay = recv.is_relay;
    for (const net::Endpoint& src : p.extra_srcs) {
      dp_.InstallEgress(EgressKey{src, static_cast<uint16_t>(r)}, media_out);
    }
  }
  ++stats_.dataplane_writes;
}

void SwitchAgent::RemoveParticipant(MeetingId meeting, ParticipantId id) {
  auto it = participants_.find(id);
  if (it == participants_.end()) return;
  Participant& p = it->second;

  dp_.RemoveFeedback(p.uplink_port);
  for (auto& [sender, ps] : p.by_sender) {
    if (!ps.leg) continue;
    dp_.RemoveFeedback(ps.leg->sfu_port);
    auto sit = participants_.find(sender);
    if (sit != participants_.end()) {
      dp_.RemoveEgress(EgressKey{sit->second.media_src,
                                 static_cast<uint16_t>(id)});
      for (const net::Endpoint& extra : sit->second.extra_srcs) {
        dp_.RemoveEgress(EgressKey{extra, static_cast<uint16_t>(id)});
      }
      dp_.RemoveEgress(
          EgressKey{ps.leg->client, static_cast<uint16_t>(sender)});
      dp_.RemoveSvc(SvcKey{sit->second.video_ssrc, id});
    }
  }
  for (auto& [sender, ps] : p.by_sender) {
    if (ps.rewriter_index) dp_.FreeRewriter(*ps.rewriter_index);
  }
  // Other participants' legs toward this (now removed) sender.
  for (auto& [pid, other] : participants_) {
    if (pid == id) continue;
    auto psit = other.by_sender.find(id);
    if (psit != other.by_sender.end() && psit->second.leg) {
      PerSender& ps = psit->second;
      dp_.RemoveFeedback(ps.leg->sfu_port);
      dp_.RemoveEgress(EgressKey{p.media_src, static_cast<uint16_t>(pid)});
      for (const net::Endpoint& extra : p.extra_srcs) {
        dp_.RemoveEgress(EgressKey{extra, static_cast<uint16_t>(pid)});
      }
      dp_.RemoveEgress(EgressKey{ps.leg->client, static_cast<uint16_t>(id)});
      dp_.RemoveSvc(SvcKey{p.video_ssrc, pid});
      if (ps.rewriter_index) {
        dp_.FreeRewriter(*ps.rewriter_index);
        ps.rewriter_index.reset();
      }
      // Clear the leg-scoped fields; the hold-down state stays (see the
      // PerSender comment).
      ps.leg.reset();
      ps.dt.reset();
      ps.remb_ewma.reset();
      ps.est_hist.clear();
    }
  }
  if (p.sends_video) ssrc_to_sender_.erase(p.video_ssrc);
  if (p.sends_audio) ssrc_to_sender_.erase(p.audio_ssrc);
  for (const net::Endpoint& extra : p.extra_srcs) {
    if (p.sends_video) dp_.RemoveStream(StreamKey{extra, p.video_ssrc});
    if (p.sends_audio) dp_.RemoveStream(StreamKey{extra, p.audio_ssrc});
  }
  if (!p.extra_srcs.empty()) {
    if (p.sends_video) dp_.RemoveDedup(p.video_ssrc);
    if (p.sends_audio) dp_.RemoveDedup(p.audio_ssrc);
  }
  if (p.is_relay && relay_count_ > 0) --relay_count_;
  stats_.dataplane_writes += 4;

  auto& members = meetings_[meeting].members;
  members.erase(std::remove(members.begin(), members.end(), id),
                members.end());
  // Scrub the filter state: entries where the departed participant was the
  // sender *or* the currently selected best receiver.
  auto& best = meetings_[meeting].best_downlink;
  best.erase(id);
  for (auto bit = best.begin(); bit != best.end();) {
    if (bit->second == id) {
      bit = best.erase(bit);
    } else {
      ++bit;
    }
  }
  participants_.erase(it);
  if (members.empty()) {
    trees_.RemoveMeeting(meeting);
  } else {
    RebuildMeeting(meeting);
  }
}

uint16_t SwitchAgent::AddRecvLeg(MeetingId meeting, ParticipantId receiver,
                                 ParticipantId sender,
                                 net::Endpoint receiver_client,
                                 uint16_t assigned_port) {
  uint16_t port = assigned_port != 0 ? assigned_port : next_port_++;
  // A leg referencing a participant this switch never learned about (its
  // AddParticipant was lost on the control channel) is ignored, like a
  // flow rule naming an unknown group in a real switch.
  auto rit = participants_.find(receiver);
  auto sit = participants_.find(sender);
  if (rit == participants_.end() || sit == participants_.end()) return port;
  Participant& recv = rit->second;
  Participant& send = sit->second;

  Leg leg;
  leg.sfu_port = port;
  leg.client = receiver_client;
  PerSender& ps = recv.by_sender[sender];
  ps.leg = leg;
  ps.dt = 2;
  ps.leg_created = sched_.now();

  // Media path: sender's packets, replica rid = receiver.
  EgressEntry media_out;
  media_out.dst = receiver_client;
  media_out.sfu_src = net::Endpoint{cfg_.sfu_ip, leg.sfu_port};
  media_out.receiver = receiver;
  media_out.is_relay = recv.is_relay;  // leaves for a downstream switch
  dp_.InstallEgress(
      EgressKey{send.media_src, static_cast<uint16_t>(receiver)}, media_out);

  // Feedback path: receiver's RTCP toward the sender.
  EgressEntry fb_out;
  fb_out.dst = send.media_src;
  fb_out.sfu_src = net::Endpoint{cfg_.sfu_ip, send.uplink_port};
  fb_out.receiver = sender;
  dp_.InstallEgress(EgressKey{receiver_client, static_cast<uint16_t>(sender)},
                    fb_out);

  FeedbackEntry fb;
  fb.meeting = meeting;
  fb.receiver = receiver;
  fb.sender = sender;
  fb.sender_rid = static_cast<uint16_t>(sender);
  fb.video_ssrc = send.video_ssrc;
  // The first leg created for a sender is the initial REMB pass-through.
  auto& best = meetings_[meeting].best_downlink;
  if (best.find(sender) == best.end()) {
    best[sender] = receiver;
    fb.remb_allowed = true;
  }
  dp_.InstallFeedback(leg.sfu_port, fb);
  stats_.dataplane_writes += 3;

  RebuildMeeting(meeting);
  return leg.sfu_port;
}

void SwitchAgent::ProcessRemb(Participant& receiver, ParticipantId sender,
                              uint64_t bitrate) {
  PerSender& ps = receiver.by_sender[sender];
  if (!ps.remb_ewma) ps.remb_ewma.emplace(cfg_.remb_ewma_alpha);
  ps.remb_ewma->Add(static_cast<double>(bitrate));
  auto& hist = ps.est_hist;
  hist.push_back(bitrate);
  if (hist.size() > 32) hist.erase(hist.begin());

  RunDownlinkFilter(receiver.meeting, sender);

  // Decode-target selection (paper §5.4). Pinned pairs are not touched,
  // and the policy waits out the noisy startup estimates (key-frame
  // bursts skew both GCC and the SR-based sender rate).
  if (pinned_dt_.count({receiver.id, sender}) > 0) return;
  if (hist.size() < 5) return;
  if (ps.leg_created && sched_.now() - *ps.leg_created < cfg_.policy_warmup) {
    return;
  }
  uint64_t sender_rate = SenderRateOf(sender);
  int curr = DecodeTargetOf(receiver.id, sender);
  int next;
  if (select_dt_) {
    next = select_dt_(curr, hist, bitrate, sender_rate);
  } else {
    next = DefaultPolicy(receiver, sender, curr, bitrate, sender_rate);
    if (next < curr && hist.size() >= 2) {
      uint64_t prev_est = hist[hist.size() - 2];
      // Debounce: the previous estimate must agree, so a single transient
      // dip cannot halve a healthy stream.
      int prev = DefaultPolicy(receiver, sender, curr, prev_est, sender_rate);
      if (prev >= curr) next = curr;
      // And never downgrade while the estimate is still climbing: the
      // sender is ramping with the best downlink's REMB and younger legs'
      // estimates simply lag behind (not congestion).
      if (bitrate > prev_est) next = curr;
    }
  }
  next = std::clamp(next, 0, 2);
  if (next != curr) {
    util::TimeUs now = sched_.now();
    if (next < curr) {
      ps.last_downgrade = now;
      // A downgrade shortly after an upgrade = failed probe: back off.
      bool had_backoff = ps.backoff.has_value();
      if (!had_backoff) ps.backoff = cfg_.upgrade_hold_down;
      if (ps.last_upgrade &&
          now - *ps.last_upgrade < cfg_.failed_probe_window) {
        ps.backoff = std::min<util::DurationUs>(*ps.backoff * 2,
                                                cfg_.upgrade_hold_down_max);
      } else if (had_backoff) {
        ps.backoff = cfg_.upgrade_hold_down;  // organic downgrade: reset
      }
    } else {
      ps.last_upgrade = now;
    }
    ApplyDecodeTarget(receiver, sender, next);
  }
}

int SwitchAgent::DefaultPolicy(const Participant& receiver,
                               ParticipantId sender, int curr,
                               uint64_t new_est, uint64_t sender_rate) {
  if (sender_rate == 0) return curr;  // no SR seen yet: hold
  double est = static_cast<double>(new_est);
  double rate = static_cast<double>(sender_rate);

  // Keep the current target while the estimate still covers it.
  bool current_fits =
      est >= cfg_.down_margin * cfg_.layer_rate_fraction[curr] * rate;

  // Downgrade: highest target the estimate covers (DT0 is the floor).
  if (!current_fits) {
    int target = 0;
    for (int k = curr - 1; k >= 1; --k) {
      if (est >= cfg_.down_margin * cfg_.layer_rate_fraction[k] * rate) {
        target = k;
        break;
      }
    }
    return target;
  }

  // Upgrade: needs headroom plus an expired (possibly backed-off)
  // hold-down since the last downgrade.
  if (curr < 2 &&
      est >= cfg_.up_margin * cfg_.layer_rate_fraction[curr + 1] * rate) {
    auto ps = receiver.by_sender.find(sender);
    if (ps != receiver.by_sender.end() && ps->second.last_downgrade) {
      util::DurationUs hold =
          ps->second.backoff.value_or(cfg_.upgrade_hold_down);
      if (sched_.now() - *ps->second.last_downgrade < hold) return curr;
    }
    return curr + 1;
  }
  return curr;
}

void SwitchAgent::RunDownlinkFilter(MeetingId meeting, ParticipantId sender) {
  // f(receivers' EWMAs) -> best downlink; only that receiver's REMB is
  // forwarded to the sender (paper §5.3).
  auto mit = meetings_.find(meeting);
  if (mit == meetings_.end()) return;
  Meeting& m = mit->second;

  ParticipantId best = 0;
  double best_val = -1.0;
  double current_val = -1.0;
  auto cur = m.best_downlink.find(sender);
  for (ParticipantId r : m.members) {
    if (r == sender) continue;
    const Participant& p = participants_.at(r);
    auto e = p.by_sender.find(sender);
    if (e == p.by_sender.end() || !e->second.remb_ewma ||
        !e->second.remb_ewma->has_value()) {
      continue;
    }
    double val = e->second.remb_ewma->value();
    if (val > best_val) {
      best_val = val;
      best = r;
    }
    if (cur != m.best_downlink.end() && cur->second == r) {
      current_val = val;
    }
  }
  if (best == 0) return;
  if (cur != m.best_downlink.end() && cur->second == best) return;
  // Hysteresis: switching the forwarded REMB between near-equal downlinks
  // would churn data-plane rules for no benefit.
  if (current_val > 0 && best_val < 1.10 * current_val) return;

  // Flip the data-plane REMB pass-through flags.
  if (cur != m.best_downlink.end()) {
    auto old_it = participants_.find(cur->second);
    if (old_it != participants_.end()) {
      auto old_ps = old_it->second.by_sender.find(sender);
      if (old_ps != old_it->second.by_sender.end() && old_ps->second.leg) {
        FeedbackEntry* fb = dp_.MutableFeedback(old_ps->second.leg->sfu_port);
        if (fb != nullptr) fb->remb_allowed = false;
        ++stats_.dataplane_writes;
      }
    }
  }
  const Participant& new_p = participants_.at(best);
  auto new_ps = new_p.by_sender.find(sender);
  if (new_ps != new_p.by_sender.end() && new_ps->second.leg) {
    FeedbackEntry* fb = dp_.MutableFeedback(new_ps->second.leg->sfu_port);
    if (fb != nullptr) fb->remb_allowed = true;
    ++stats_.dataplane_writes;
  }
  m.best_downlink[sender] = best;
  ++stats_.filter_flips;
}

SkipCadence SwitchAgent::CadenceFor(ParticipantId sender, int dt) const {
  auto a = dd_anchor_.find(sender);
  uint16_t anchor = a == dd_anchor_.end() ? 1 : a->second;
  return SkipCadence::ForDecodeTarget(dt, anchor);
}

void SwitchAgent::ApplyDecodeTarget(Participant& receiver,
                                    ParticipantId sender, int new_dt) {
  ++stats_.dt_changes;
  // A relay leg's decode target switching = the stream crossing the
  // inter-switch link changed layers (driven by the downstream switch's
  // forwarded REMB) — the cascade's cross-switch adaptation events.
  if (receiver.is_relay) ++stats_.relay_dt_changes;
  receiver.by_sender[sender].dt = new_dt;
  Participant& send = participants_.at(sender);

  SkipCadence cadence = CadenceFor(sender, new_dt);
  SvcKey key{send.video_ssrc, receiver.id};
  SvcEntry* svc = dp_.MutableSvc(key);
  if (svc == nullptr) {
    SvcEntry fresh;
    fresh.decode_target = new_dt;
    fresh.cadence = cadence;
    fresh.rewriter_index = dp_.AllocateRewriter(cadence);
    receiver.by_sender[sender].rewriter_index = fresh.rewriter_index;
    dp_.InstallSvc(key, fresh);
    svc = dp_.MutableSvc(key);
  } else {
    svc->decode_target = new_dt;
    svc->cadence = cadence;
    if (svc->rewriter_index != UINT32_MAX) {
      dp_.ConfigureRewriter(svc->rewriter_index, cadence);
    }
  }
  ++stats_.dataplane_writes;

  RebuildMeeting(receiver.meeting);

  // Two-party meetings filter by template in the egress pipeline (no tree).
  auto design = trees_.CurrentDesign(receiver.meeting);
  if (svc != nullptr) {
    svc->filter_in_egress =
        design.has_value() && *design == TreeDesign::kTwoParty;
  }
}

void SwitchAgent::RebuildMeeting(MeetingId meeting) {
  auto mit = meetings_.find(meeting);
  if (mit == meetings_.end() || mit->second.members.empty()) return;
  MeetingSpec spec;
  spec.id = meeting;
  for (ParticipantId pid : mit->second.members) {
    const Participant& p = participants_.at(pid);
    MemberSpec m;
    m.id = p.id;
    m.media_src = p.media_src;
    m.video_ssrc = p.video_ssrc;
    m.audio_ssrc = p.audio_ssrc;
    m.sends_video = p.sends_video;
    m.sends_audio = p.sends_audio;
    for (const auto& [sender, ps] : p.by_sender) {
      if (ps.dt) m.decode_targets.emplace(sender, *ps.dt);
    }
    spec.members.push_back(std::move(m));
  }
  TreeDesign design = trees_.Reconfigure(spec);
  ++stats_.dataplane_writes;

  // Keep egress-filter flags consistent with the design in effect.
  for (ParticipantId pid : mit->second.members) {
    Participant& p = participants_.at(pid);
    for (auto& [sender, ps] : p.by_sender) {
      if (!ps.dt) continue;
      const Participant& s = participants_.at(sender);
      SvcEntry* svc = dp_.MutableSvc(SvcKey{s.video_ssrc, pid});
      if (svc != nullptr) {
        svc->filter_in_egress = design == TreeDesign::kTwoParty;
      }
    }
  }
  // Reconfigure rewrote primary stream entries in place, wiping the
  // dedup flags; re-mirror any redundant relay sources against the fresh
  // state.
  for (ParticipantId pid : mit->second.members) {
    Participant& p = participants_.at(pid);
    if (!p.extra_srcs.empty()) SyncRelaySources(p);
  }
}

void SwitchAgent::ForceDecodeTarget(MeetingId meeting, ParticipantId receiver,
                                    ParticipantId sender, int dt) {
  (void)meeting;
  auto it = participants_.find(receiver);
  if (it == participants_.end()) return;
  pinned_dt_.insert({receiver, sender});
  ApplyDecodeTarget(it->second, sender, std::clamp(dt, 0, 2));
}

void SwitchAgent::UnpinDecodeTarget(ParticipantId receiver,
                                    ParticipantId sender) {
  pinned_dt_.erase({receiver, sender});
}

int SwitchAgent::DecodeTargetOf(ParticipantId receiver,
                                ParticipantId sender) const {
  auto it = participants_.find(receiver);
  if (it == participants_.end()) return 2;
  auto ps = it->second.by_sender.find(sender);
  if (ps == it->second.by_sender.end() || !ps->second.dt) return 2;
  return *ps->second.dt;
}

ParticipantId SwitchAgent::BestDownlinkOf(ParticipantId sender) const {
  auto pit = participants_.find(sender);
  if (pit == participants_.end()) return 0;
  auto mit = meetings_.find(pit->second.meeting);
  if (mit == meetings_.end()) return 0;
  auto b = mit->second.best_downlink.find(sender);
  return b == mit->second.best_downlink.end() ? 0 : b->second;
}

uint64_t SwitchAgent::SenderRateOf(ParticipantId sender) const {
  auto pit = participants_.find(sender);
  if (pit == participants_.end()) return 0;
  auto rit = sender_rates_.find(pit->second.video_ssrc);
  if (rit == sender_rates_.end() || !rit->second.rate.has_value()) return 0;
  return static_cast<uint64_t>(rit->second.rate.value());
}

}  // namespace scallop::core
