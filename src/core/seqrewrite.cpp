#include "core/seqrewrite.hpp"

#include <algorithm>

namespace scallop::core {

bool SkipCadence::AllSkippedBetween(uint16_t from, uint16_t to) const {
  int span = util::SeqDiff(to, from);
  if (span <= 1) return false;  // empty range: gap lies inside kept frames
  for (int i = 1; i < span; ++i) {
    if (Keeps(static_cast<uint16_t>(from + i))) return false;
  }
  return true;
}

// Frames strictly between `from` and `to` that the cadence keeps.
int SkipCadence::KeptBetween(uint16_t from, uint16_t to) const {
  int span = util::SeqDiff(to, from);
  int kept = 0;
  for (int i = 1; i < span; ++i) {
    if (Keeps(static_cast<uint16_t>(from + i))) ++kept;
  }
  return kept;
}

SkipCadence SkipCadence::ForDecodeTarget(int dt, uint16_t anchor_frame) {
  SkipCadence c;
  c.modulus = 4;
  c.anchor = anchor_frame;
  switch (dt) {
    case 0: c.keep_mask = 0b0001; break;  // TL0 only (7.5 fps)
    case 1: c.keep_mask = 0b0101; break;  // TL0 + TL1 (15 fps)
    default: c.keep_mask = 0b1111; break;  // everything (30 fps)
  }
  return c;
}

RewriteResult SlmRewriter::Process(const RewritePacketView& pkt) {
  int64_t seq = seq_unwrap_.Unwrap(pkt.seq);

  if (!started_) {
    started_ = true;
    highest_seq_ = seq;
    highest_frame_ = pkt.frame;
    if (pkt.suppress) {
      offset_ = 1;
      return {false, 0};
    }
    offset_ = 0;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }

  int64_t d = seq - highest_seq_;

  if (pkt.suppress) {
    if (d <= 0) return {false, 0};  // old suppressed packet: drop
    int64_t missing = d - 1;
    if (missing > 0 && cadence_.AllSkippedBetween(highest_frame_, pkt.frame)) {
      offset_ += missing;  // mask gap attributed to suppressed frames
    }
    offset_ += 1;  // the suppressed packet itself
    pending_hole_ = false;
    highest_seq_ = seq;
    if (util::SeqNewer(pkt.frame, highest_frame_)) highest_frame_ = pkt.frame;
    return {false, 0};
  }

  if (d == 1) {
    pending_hole_ = false;
    highest_seq_ = seq;
    if (util::SeqNewer(pkt.frame, highest_frame_)) highest_frame_ = pkt.frame;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }
  if (d > 1) {
    int64_t missing = d - 1;
    if (cadence_.AllSkippedBetween(highest_frame_, pkt.frame)) {
      offset_ += missing;
      pending_hole_ = false;
    } else {
      // Gap left open: the receiver will NACK. A single-packet hole right
      // behind the new highest can still be filled by a reordered arrival.
      pending_hole_ = missing == 1;
    }
    highest_seq_ = seq;
    if (util::SeqNewer(pkt.frame, highest_frame_)) highest_frame_ = pkt.frame;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }
  // Reordered (old) packet. Forward only into the one still-open hole
  // immediately behind the highest (offset unchanged since the hole was
  // left), which is the single provably collision-free case.
  if (d == -1 && pending_hole_) {
    pending_hole_ = false;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }
  return {false, 0};
}

RewriteResult SlrRewriter::Process(const RewritePacketView& pkt) {
  int64_t seq = seq_unwrap_.Unwrap(pkt.seq);

  if (!started_) {
    started_ = true;
    highest_seq_ = seq;
    highest_frame_ = pkt.frame;
    last_frame_ended_ = pkt.end_of_frame;
    if (pkt.suppress) {
      offset_ = 1;
      offset_valid_from_ = seq + 1;
      any_suppressed_ = true;
      highest_suppressed_frame_ = pkt.frame;
      return {false, 0};
    }
    offset_ = 0;
    offset_valid_from_ = seq;
    first_seq_latest_frame_ = seq;
    offset_latest_frame_ = 0;
    latest_frame_ = pkt.frame;
    return {true, static_cast<uint16_t>(seq)};
  }

  int64_t d = seq - highest_seq_;

  if (pkt.suppress) {
    if (d <= 0) return {false, 0};
    int64_t missing = d - 1;
    if (missing > 0) {
      // A gap immediately before a suppressed packet is attributable to
      // suppressed frames when the cadence covers the span, when it lies
      // inside this same suppressed frame, or when it is the head of this
      // suppressed frame after a cleanly ended one.
      bool same_frame = pkt.frame == highest_frame_ && !pkt.start_of_frame;
      bool head_of_frame_only = pkt.frame != highest_frame_ &&
                                last_frame_ended_ &&
                                util::SeqDiff(pkt.frame, highest_frame_) == 1;
      int span = util::SeqDiff(pkt.frame, highest_frame_);
      if (same_frame || (head_of_frame_only && !cadence_.Keeps(pkt.frame))) {
        offset_ += missing;
      } else if (span > 1) {
        // Multi-frame gap: mask the share attributable to suppressed
        // frames; leave (estimated) holes for lost kept-frame packets.
        int kept = cadence_.KeptBetween(highest_frame_, pkt.frame);
        int64_t keep_holes = static_cast<int64_t>(
            static_cast<double>(kept) * PacketsPerFrame() + 0.5);
        int64_t mask = std::max<int64_t>(0, missing - keep_holes);
        offset_ += mask;
      } else if (missing == 1) {
        // The missing packet may be a forwarded one that is merely
        // reordered behind this suppressed packet: reserve its slot.
        hole_seq_ = seq - 1;
        hole_offset_ = offset_;
      }
    }
    offset_ += 1;
    offset_valid_from_ = seq + 1;
    highest_seq_ = seq;
    if (util::SeqNewer(pkt.frame, highest_frame_)) highest_frame_ = pkt.frame;
    last_frame_ended_ = pkt.end_of_frame;
    if (!any_suppressed_ ||
        util::SeqNewer(pkt.frame, highest_suppressed_frame_)) {
      highest_suppressed_frame_ = pkt.frame;
    }
    any_suppressed_ = true;
    return {false, 0};
  }

  if (d == 1) {
    ++packets_seen_;
    if (pkt.frame != highest_frame_) ++frames_seen_;
    if (pkt.frame != latest_frame_ || pkt.start_of_frame) {
      first_seq_latest_frame_ = seq;
      offset_latest_frame_ = offset_;
      latest_frame_ = pkt.frame;
    }
    highest_seq_ = seq;
    if (util::SeqNewer(pkt.frame, highest_frame_)) highest_frame_ = pkt.frame;
    last_frame_ended_ = pkt.end_of_frame;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }
  if (d > 1) {
    int64_t missing = d - 1;
    // Clean boundaries with an all-suppressed span are masked exactly;
    // multi-frame gaps under loss are masked proportionally (suppressed
    // share per the packets-per-frame estimate), leaving holes for the
    // kept frames' lost packets only.
    bool clean_boundary = last_frame_ended_ && pkt.start_of_frame;
    int span = util::SeqDiff(pkt.frame, highest_frame_);
    if (clean_boundary &&
        cadence_.AllSkippedBetween(highest_frame_, pkt.frame)) {
      offset_ += missing;
      offset_valid_from_ = seq;
    } else if (span > 1) {
      int kept = cadence_.KeptBetween(highest_frame_, pkt.frame);
      // Packets of this frame already missing (head) count as kept losses.
      int64_t head = pkt.start_of_frame ? 0 : 1;
      int64_t keep_holes = static_cast<int64_t>(
          (static_cast<double>(kept) + static_cast<double>(head) * 0.5) *
              PacketsPerFrame() +
          0.5);
      int64_t mask = std::max<int64_t>(0, missing - keep_holes);
      if (mask > 0) {
        offset_ += mask;
        offset_valid_from_ = seq;
      } else if (missing == 1) {
        hole_seq_ = seq - 1;
        hole_offset_ = offset_;
      }
    } else if (missing == 1) {
      hole_seq_ = seq - 1;
      hole_offset_ = offset_;
    }
    first_seq_latest_frame_ = seq;
    offset_latest_frame_ = offset_;
    latest_frame_ = pkt.frame;
    highest_seq_ = seq;
    if (util::SeqNewer(pkt.frame, highest_frame_)) highest_frame_ = pkt.frame;
    last_frame_ended_ = pkt.end_of_frame;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }

  // Reordered or retransmitted packet. Three provably collision-free
  // rewrites:
  //  (a) anything at or above the last offset change maps with the current
  //      offset — exactly the value it had (or would have had) originally,
  //      which is what lets receiver-side-loss retransmissions through;
  //  (b) a packet of the latest forwarded frame fills that frame's own
  //      holes with the frame's (constant) offset;
  //  (c) the reserved single-packet hole is filled with the offset that
  //      was in effect at its position.
  if (seq >= offset_valid_from_) {
    if (seq == hole_seq_) hole_seq_ = -1;
    return {true, static_cast<uint16_t>(seq - offset_)};
  }
  if (pkt.frame == latest_frame_ && seq >= first_seq_latest_frame_) {
    if (seq == hole_seq_) hole_seq_ = -1;
    return {true, static_cast<uint16_t>(seq - offset_latest_frame_)};
  }
  if (seq == hole_seq_) {
    hole_seq_ = -1;
    return {true, static_cast<uint16_t>(seq - hole_offset_)};
  }
  return {false, 0};
}

void OracleRewriter::NoteSenderPacket(uint16_t seq16, bool suppress) {
  int64_t seq = note_unwrap_.Unwrap(seq16);
  if (ideal_base_ < 0) ideal_base_ = seq;
  if (seq < ideal_base_) return;  // violates the send-order contract
  size_t idx = static_cast<size_t>(seq - ideal_base_);
  if (idx >= ideal_.size()) ideal_.resize(idx + 1, kNeverNoted);
  if (suppress) {
    ++suppressed_so_far_;
    ideal_[idx] = -1;
  } else {
    ideal_[idx] = seq - suppressed_so_far_;
  }
}

RewriteResult OracleRewriter::Process(const RewritePacketView& pkt) {
  int64_t seq = proc_unwrap_.Unwrap(pkt.seq);
  if (ideal_base_ < 0 || seq < ideal_base_) return {false, 0};
  size_t idx = static_cast<size_t>(seq - ideal_base_);
  if (idx >= ideal_.size() || ideal_[idx] < 0) return {false, 0};
  return {true, static_cast<uint16_t>(ideal_[idx])};
}

}  // namespace scallop::core
