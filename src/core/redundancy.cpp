#include "core/redundancy.hpp"

#include <algorithm>

namespace scallop::core {

DedupWindow::DedupWindow(int window)
    : window_(std::max(window, 1)),
      bits_((static_cast<size_t>(window_) + 63) / 64, 0) {}

bool DedupWindow::TestAndSet(int64_t ext) {
  const size_t slot =
      static_cast<size_t>(ext % window_);  // ext >= 0 by construction
  const size_t word = slot / 64;
  const uint64_t mask = uint64_t{1} << (slot % 64);
  const bool was_set = (bits_[word] & mask) != 0;
  bits_[word] |= mask;
  return was_set;
}

bool DedupWindow::Observe(uint16_t seq) {
  if (!primed_) {
    primed_ = true;
    last_seq_ = seq;
    // Start high enough that the in-window test below never computes a
    // negative extended sequence even if the first packets arrive in
    // descending order across a wrap.
    last_ext_ = highest_ext_ = int64_t{1} << 20;
    TestAndSet(highest_ext_);
    return false;
  }

  // Unwrap: the signed 16-bit delta from the previous arrival places this
  // packet in the extended space, tolerating reordering across a wrap.
  const int16_t delta = static_cast<int16_t>(seq - last_seq_);
  const int64_t ext = last_ext_ + delta;
  last_seq_ = seq;
  last_ext_ = ext;

  if (ext > highest_ext_) {
    // Moving forward: clear the bitmap slots the window is sliding over
    // so stale marks from a full wrap ago never masquerade as arrivals.
    const int64_t start = std::max(highest_ext_ + 1, ext - window_ + 1);
    for (int64_t s = start; s < ext; ++s) {
      const size_t slot = static_cast<size_t>(s % window_);
      bits_[slot / 64] &= ~(uint64_t{1} << (slot % 64));
    }
    highest_ext_ = ext;
    const size_t slot = static_cast<size_t>(ext % window_);
    const size_t word = slot / 64;
    const uint64_t mask = uint64_t{1} << (slot % 64);
    bits_[word] &= ~mask;  // freshly slid-over slot
    bits_[word] |= mask;
    return false;
  }

  if (ext <= highest_ext_ - window_) {
    // Evicted: beyond the bounded history. Forward it — we cannot tell a
    // duplicate from a very late original, and swallowing originals is
    // the worse failure.
    return false;
  }

  if (TestAndSet(ext)) {
    ++duplicates_;
    return true;
  }
  return false;
}

}  // namespace scallop::core
