#include "client/peer.hpp"

#include <algorithm>

#include "rtp/classifier.hpp"
#include "rtp/rtcp.hpp"

namespace scallop::client {

namespace {
// SSRCs derived from the peer address: unique across the simulation.
uint32_t DeriveSsrc(net::Ipv4 addr, uint16_t port, uint8_t media) {
  return (addr.value() ^ (static_cast<uint32_t>(port) << 8)) * 4 + media;
}
}  // namespace

Peer::Peer(sim::Scheduler& sched, sim::Network& network, const PeerConfig& cfg)
    : sched_(sched),
      network_(network),
      cfg_(cfg),
      next_local_port_(static_cast<uint16_t>(cfg.base_port + 1)) {
  media_local_ = net::Endpoint{cfg_.address, cfg_.base_port};
  video_ssrc_ = DeriveSsrc(cfg_.address, cfg_.base_port, 1);
  audio_ssrc_ = DeriveSsrc(cfg_.address, cfg_.base_port, 2);
  cfg_.bwe.remb_interval = cfg_.remb_interval;
}

Peer::~Peer() = default;

void Peer::Join(core::SignalingServer& server, core::MeetingId meeting) {
  server_ = &server;
  meeting_ = meeting;

  sdp::SessionDescription offer;
  offer.origin = "peer";
  offer.session_id = video_ssrc_;
  offer.ice_ufrag = "uf" + std::to_string(video_ssrc_);
  offer.ice_pwd = "pw";

  sdp::Candidate cand;
  cand.priority = 100;
  cand.endpoint = media_local_;

  sdp::MediaSection video;
  video.type = sdp::MediaType::kVideo;
  video.payload_type = 96;
  video.codec = "AV1";
  video.clock_rate = 90'000;
  video.ssrc = video_ssrc_;
  video.cname = "peer" + std::to_string(video_ssrc_);
  video.svc_l1t3 = true;
  video.dd_extension_id = av1::kDdExtensionId;
  video.abs_send_time_id = media::kAbsSendTimeExtensionId;
  video.recv_only = !cfg_.send_video;
  video.candidates.push_back(cand);
  offer.media.push_back(video);

  sdp::MediaSection audio;
  audio.type = sdp::MediaType::kAudio;
  audio.payload_type = 111;
  audio.codec = "opus";
  audio.clock_rate = 48'000;
  audio.ssrc = audio_ssrc_;
  audio.cname = video.cname;
  audio.abs_send_time_id = media::kAbsSendTimeExtensionId;
  audio.recv_only = !cfg_.send_audio;
  audio.candidates.push_back(cand);
  offer.media.push_back(audio);

  auto result = server.Join(meeting, offer, this);
  id_ = result.participant;
  uplink_sfu_ = result.uplink_sfu;
  StartMedia();
}

void Peer::Leave() {
  if (server_ != nullptr) {
    server_->Leave(meeting_, id_);
    server_ = nullptr;
  }
  tasks_.clear();
  // Tear down the receive pipelines like a real client closing its
  // decoders: keeping them would misattribute in-flight or post-rejoin
  // packets on reused ports to dead legs.
  legs_.clear();
  port_to_sender_.clear();
  port_to_leg_.clear();
  // Drop the retransmission history: a rejoin restarts the packetizer in
  // the same sequence space (deterministic per-peer seed), so serving
  // NACKs from the previous session would retransmit stale frames under
  // live sequence numbers — exactly the conflicting-duplicate corruption
  // the rewriter exists to prevent.
  history_.clear();
  history_order_.clear();
  stun_inflight_.clear();
}

net::Endpoint Peer::AllocateLocalLeg(core::ParticipantId sender) {
  // Defensive: if a leg for this sender already exists (a renegotiation
  // without an intervening Leave), replace it — emplace below would
  // silently keep the stale one and the new port mapping would dangle.
  auto stale = legs_.find(sender);
  if (stale != legs_.end()) {
    port_to_sender_.erase(stale->second.local.port);
    port_to_leg_.erase(stale->second.local.port);
    legs_.erase(stale);
  }
  net::Endpoint local{cfg_.address, next_local_port_++};
  RemoteLeg leg;
  leg.sender = sender;
  leg.local = local;
  port_to_sender_[local.port] = sender;
  auto [it, inserted] = legs_.emplace(sender, std::move(leg));
  (void)inserted;
  port_to_leg_[local.port] = &it->second;
  return local;
}

void Peer::OnRemoteLegReady(core::ParticipantId sender, uint32_t video_ssrc,
                            uint32_t audio_ssrc, net::Endpoint sfu_endpoint) {
  auto it = legs_.find(sender);
  if (it == legs_.end()) return;
  RemoteLeg& leg = it->second;
  leg.sfu = sfu_endpoint;
  leg.video_ssrc = video_ssrc;
  leg.audio_ssrc = audio_ssrc;
  leg.bwe = std::make_unique<bwe::ReceiverBandwidthEstimator>(cfg_.bwe);
  leg.audio = std::make_unique<media::AudioReceiver>();

  media::VideoReceiverConfig rx_cfg;
  RemoteLeg* leg_ptr = &leg;
  leg.video = std::make_unique<media::VideoReceiver>(
      rx_cfg,
      [this, leg_ptr](const std::vector<uint16_t>& seqs) {
        rtp::Nack nack;
        nack.sender_ssrc = video_ssrc_;
        nack.media_ssrc = leg_ptr->video_ssrc;
        nack.sequence_numbers = seqs;
        Transmit(leg_ptr->local, leg_ptr->sfu,
                 rtp::Serialize(rtp::RtcpMessage{nack}));
        ++stats_.rtcp_sent;
      },
      [this, leg_ptr] {
        rtp::Pli pli;
        pli.sender_ssrc = video_ssrc_;
        pli.media_ssrc = leg_ptr->video_ssrc;
        Transmit(leg_ptr->local, leg_ptr->sfu,
                 rtp::Serialize(rtp::RtcpMessage{pli}));
        ++stats_.rtcp_sent;
      });
}

void Peer::OnRemoteSenderLeft(core::ParticipantId sender) {
  auto it = legs_.find(sender);
  if (it == legs_.end()) return;
  port_to_sender_.erase(it->second.local.port);
  port_to_leg_.erase(it->second.local.port);
  legs_.erase(it);
}

void Peer::StartMedia() {
  if (cfg_.send_video) {
    encoder_ = std::make_unique<media::SvcEncoder>(cfg_.encoder, cfg_.seed);
    media::PacketizerConfig pk;
    pk.ssrc = video_ssrc_;
    packetizer_ = std::make_unique<media::Packetizer>(pk);
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        sched_, encoder_->frame_interval(), [this] {
          SendVideoFrame();
          return true;
        }));
  }
  if (cfg_.send_audio) {
    media::AudioSourceConfig ac;
    ac.ssrc = audio_ssrc_;
    audio_source_ = std::make_unique<media::AudioSource>(ac);
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        sched_, audio_source_->frame_interval(), [this] {
          SendAudioFrame();
          return true;
        }));
  }
  if (cfg_.send_video || cfg_.send_audio) {
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        sched_, cfg_.sr_interval, [this] {
          SendSenderReports();
          return true;
        }));
  }
  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      sched_, cfg_.stun_interval, [this] {
        SendStun();
        return true;
      }));
  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      sched_, cfg_.tick_interval, [this] {
        Tick();
        return true;
      }));
}

void Peer::SendVideoFrame() {
  util::TimeUs now = sched_.now();
  media::EncodedFrame frame = encoder_->NextFrame(now);
  for (const rtp::RtpPacket& pkt : packetizer_->Packetize(frame, now)) {
    auto wire = pkt.Serialize();
    history_[pkt.sequence_number] = wire;
    history_order_.push_back(pkt.sequence_number);
    while (history_order_.size() > cfg_.retransmit_history) {
      history_.erase(history_order_.front());
      history_order_.pop_front();
    }
    ++video_packet_count_;
    video_octet_count_ += static_cast<uint32_t>(pkt.payload.size());
    ++stats_.rtp_sent;
    Transmit(media_local_, uplink_sfu_, std::move(wire));
  }
}

void Peer::SendAudioFrame() {
  util::TimeUs now = sched_.now();
  rtp::RtpPacket pkt = audio_source_->NextPacket(now);
  ++audio_packet_count_;
  audio_octet_count_ += static_cast<uint32_t>(pkt.payload.size());
  ++stats_.rtp_sent;
  Transmit(media_local_, uplink_sfu_, pkt.Serialize());
}

void Peer::SendSenderReports() {
  util::TimeUs now = sched_.now();
  std::string cname = "peer" + std::to_string(video_ssrc_);
  if (cfg_.send_video) {
    rtp::SenderReport sr;
    sr.sender_ssrc = video_ssrc_;
    sr.ntp_timestamp = util::ToNtp(now);
    sr.rtp_timestamp = util::ToRtpTimestamp90k(now);
    sr.packet_count = video_packet_count_;
    sr.octet_count = video_octet_count_;
    rtp::Sdes sdes;
    sdes.chunks.push_back({video_ssrc_, cname});
    std::vector<rtp::RtcpMessage> compound{sr, sdes};
    Transmit(media_local_, uplink_sfu_, rtp::SerializeCompound(compound));
    ++stats_.rtcp_sent;
  }
  if (cfg_.send_audio) {
    rtp::SenderReport sr;
    sr.sender_ssrc = audio_ssrc_;
    sr.ntp_timestamp = util::ToNtp(now);
    sr.rtp_timestamp = static_cast<uint32_t>(now * 48 / 1000);
    sr.packet_count = audio_packet_count_;
    sr.octet_count = audio_octet_count_;
    rtp::Sdes sdes;
    sdes.chunks.push_back({audio_ssrc_, cname});
    std::vector<rtp::RtcpMessage> compound{sr, sdes};
    Transmit(media_local_, uplink_sfu_, rtp::SerializeCompound(compound));
    ++stats_.rtcp_sent;
  }
}

void Peer::SendReceiverFeedback(RemoteLeg& leg, bool include_remb) {
  rtp::ReceiverReport rr;
  rr.sender_ssrc = video_ssrc_;
  if (leg.video != nullptr && leg.video_ssrc != 0) {
    rtp::ReportBlock block;
    block.ssrc = leg.video_ssrc;
    block.highest_seq = leg.highest_video_seq_ext;
    block.jitter = leg.video->jitter().JitterClockUnits();
    rr.blocks.push_back(block);
  }
  std::vector<rtp::RtcpMessage> compound{rr};
  if (include_remb && leg.bwe != nullptr) {
    rtp::Remb remb;
    remb.sender_ssrc = video_ssrc_;
    remb.bitrate_bps = leg.bwe->estimate();
    remb.media_ssrcs = {leg.video_ssrc};
    compound.emplace_back(remb);
  }
  Transmit(leg.local, leg.sfu, rtp::SerializeCompound(compound));
  ++stats_.rtcp_sent;
}

void Peer::SendStun() {
  util::TimeUs now = sched_.now();
  auto send_check = [&](net::Endpoint from, net::Endpoint to) {
    if (to.port == 0) return;
    stun::StunMessage req;
    req.type = stun::MessageType::kBindingRequest;
    uint64_t tid = (static_cast<uint64_t>(id_) << 32) | ++stun_counter_;
    req.transaction_id =
        stun::MakeTransactionId(tid, static_cast<uint32_t>(from.port));
    req.username = "sfu:peer" + std::to_string(id_);
    req.priority = 100;
    req.ice_controlling = tid;
    stun_inflight_[tid] = now;
    ++stats_.stun_sent;
    Transmit(from, to, req.Serialize());
  };
  send_check(media_local_, uplink_sfu_);
  for (auto& [sender, leg] : legs_) send_check(leg.local, leg.sfu);
  // Bound the in-flight table (lost responses).
  while (stun_inflight_.size() > 64) {
    stun_inflight_.erase(stun_inflight_.begin());
  }
}

void Peer::Tick() {
  util::TimeUs now = sched_.now();
  for (auto& [sender, leg] : legs_) {
    if (leg.video != nullptr) leg.video->OnTick(now);
    if (leg.bwe != nullptr && leg.sfu.port != 0) {
      auto remb = leg.bwe->MaybeRemb(now);
      if (remb.has_value()) SendReceiverFeedback(leg, /*include_remb=*/true);
    }
    // Occasional standalone receiver reports (no REMB), as in Table 1.
    if (leg.sfu.port != 0 && now - leg.last_rr >= cfg_.rr_interval) {
      leg.last_rr = now;
      SendReceiverFeedback(leg, /*include_remb=*/false);
    }
  }
}

Peer::RemoteLeg* Peer::LegByLocalPort(uint16_t port) {
  auto it = port_to_leg_.find(port);
  return it == port_to_leg_.end() ? nullptr : it->second;
}

void Peer::OnPacket(net::PacketPtr pkt) {
  util::TimeUs arrival = pkt->arrival;
  switch (rtp::Classify(pkt->payload_span())) {
    case rtp::PayloadKind::kStun: {
      auto msg = stun::StunMessage::Parse(pkt->payload_span());
      if (msg.has_value() && msg->is_response()) {
        uint64_t tid = 0;
        for (int i = 0; i < 8; ++i) {
          tid = tid << 8 | msg->transaction_id[static_cast<size_t>(i)];
        }
        auto it = stun_inflight_.find(tid);
        if (it != stun_inflight_.end()) {
          stats_.last_stun_rtt_ms = util::ToMillis(arrival - it->second);
          ++stats_.stun_rtt_samples;
          stun_inflight_.erase(it);
        }
      }
      return;
    }
    case rtp::PayloadKind::kRtcp:
      HandleRtcp(LegByLocalPort(pkt->dst.port), pkt->payload_span());
      return;
    case rtp::PayloadKind::kRtp: {
      RemoteLeg* leg = LegByLocalPort(pkt->dst.port);
      if (leg == nullptr) return;
      auto parsed = rtp::RtpPacket::Parse(pkt->payload_span());
      if (!parsed.has_value()) return;
      HandleMediaPacket(*leg, *parsed, arrival, pkt->payload.size());
      return;
    }
    default:
      return;
  }
}

void Peer::HandleMediaPacket(RemoteLeg& leg, const rtp::RtpPacket& pkt,
                             util::TimeUs arrival, size_t wire_bytes) {
  // abs-send-time for GCC (wraps every 64 s; deltas unaffected for our
  // experiment horizons because consecutive packets are close together).
  util::TimeUs send_time = arrival;
  const rtp::RtpExtension* ast =
      pkt.FindExtension(media::kAbsSendTimeExtensionId);
  if (ast != nullptr) {
    util::TimeUs decoded = media::DecodeAbsSendTime(ast->data);
    // Align the 64 s window with the arrival clock.
    constexpr util::TimeUs kWrap = 64'000'000;  // abs-send-time wrap: 64 s
    util::TimeUs base = arrival - (arrival % kWrap);
    send_time = base + decoded;
    if (send_time > arrival + kWrap / 2) send_time -= kWrap;
  }
  if (leg.bwe != nullptr) {
    leg.bwe->OnPacket(arrival, send_time, wire_bytes + net::kL3L4Overhead);
  }
  if (cfg_.media_tap) cfg_.media_tap(pkt.ssrc, send_time, arrival);
  if (pkt.ssrc == leg.video_ssrc && leg.video != nullptr) {
    leg.video->OnPacket(pkt, arrival);
    ++leg.video_packets;
    leg.highest_video_seq_ext = pkt.sequence_number;
  } else if (pkt.ssrc == leg.audio_ssrc && leg.audio != nullptr) {
    leg.audio->OnPacket(pkt, arrival);
  }
}

void Peer::HandleRtcp(RemoteLeg* leg, std::span<const uint8_t> payload) {
  auto msgs = rtp::ParseCompound(payload);
  if (!msgs.has_value()) return;
  for (const auto& msg : *msgs) {
    if (const auto* remb = std::get_if<rtp::Remb>(&msg)) {
      ++stats_.remb_received;
      // Receiver-driven rate adaptation (paper §5.2): the forwarded REMB
      // from the best downlink sets the encoder target.
      if (encoder_ != nullptr) {
        encoder_->SetTargetBitrate(remb->bitrate_bps);
      }
    } else if (const auto* nack = std::get_if<rtp::Nack>(&msg)) {
      ++stats_.nack_received;
      HandleNack(*nack);
    } else if (std::get_if<rtp::Pli>(&msg)) {
      ++stats_.pli_received;
      if (encoder_ != nullptr) {
        encoder_->RequestKeyFrame();
        // Refresh keyframes re-announce the SVC structure so the SFU can
        // revalidate (this is what keeps Table 1's "AV1 DS" row tiny).
        if (packetizer_ != nullptr) packetizer_->ResendStructure();
        ++stats_.keyframes_on_pli;
      }
    } else if (std::get_if<rtp::SenderReport>(&msg)) {
      // Lip-sync reference; nothing to do in the model.
      (void)leg;
    }
  }
}

void Peer::HandleNack(const rtp::Nack& nack) {
  for (uint16_t seq : nack.sequence_numbers) {
    auto it = history_.find(seq);
    if (it == history_.end()) continue;
    ++stats_.retransmissions_sent;
    ++stats_.rtp_sent;
    Transmit(media_local_, uplink_sfu_, it->second);
  }
}

void Peer::Transmit(net::Endpoint from, net::Endpoint to,
                    std::vector<uint8_t> payload) {
  network_.Send(net::MakePacket(from, to, std::move(payload)));
}

const media::VideoReceiver* Peer::video_receiver(
    core::ParticipantId sender) const {
  auto it = legs_.find(sender);
  return it == legs_.end() ? nullptr : it->second.video.get();
}

const media::AudioReceiver* Peer::audio_receiver(
    core::ParticipantId sender) const {
  auto it = legs_.find(sender);
  return it == legs_.end() ? nullptr : it->second.audio.get();
}

const bwe::ReceiverBandwidthEstimator* Peer::bwe_for(
    core::ParticipantId sender) const {
  auto it = legs_.find(sender);
  return it == legs_.end() ? nullptr : it->second.bwe.get();
}

std::vector<core::ParticipantId> Peer::remote_senders() const {
  std::vector<core::ParticipantId> out;
  for (const auto& [sender, leg] : legs_) out.push_back(sender);
  return out;
}

}  // namespace scallop::client
