// WebRTC client endpoint model: what a browser tab runs in the paper's
// testbed. One Peer owns an SVC video encoder + packetizer, an audio
// source, per-remote-sender receive pipelines with GCC bandwidth
// estimation, RTCP generation (SR/SDES, RR+REMB, NACK, PLI), a
// retransmission history, and STUN keepalives. It implements the
// controller's SignalingClient interface so the per-participant stream
// split (paper §5.3) is negotiated exactly as in Scallop.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "bwe/estimator.hpp"
#include "core/controller.hpp"
#include "media/audio.hpp"
#include "media/encoder.hpp"
#include "media/packetizer.hpp"
#include "media/receiver.hpp"
#include "net/packet.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "stun/stun.hpp"

namespace scallop::client {

struct PeerConfig {
  PeerConfig() {
    // Allow upgrade probing: the estimate may exceed the throttled
    // incoming rate by 2x, so a receiver recovering from an SFU-side
    // downgrade can signal headroom (WebRTC solves this with padding
    // probes; the cap plays that role here).
    bwe.aimd.max_rate_multiplier = 2.0;
  }

  net::Ipv4 address;
  uint16_t base_port = 40'000;
  bool send_video = true;
  bool send_audio = true;
  media::SvcEncoderConfig encoder;
  // RTCP cadences calibrated against the paper's Table 1.
  util::DurationUs sr_interval = util::Millis(350);
  util::DurationUs remb_interval = util::Millis(220);
  util::DurationUs rr_interval = util::Seconds(5);
  util::DurationUs stun_interval = util::Millis(2500);
  util::DurationUs tick_interval = util::Millis(50);
  bwe::EstimatorConfig bwe;
  size_t retransmit_history = 1024;
  uint64_t seed = 1;
  // Observability: called for every received media packet with the
  // sender-stamped send time (abs-send-time) and the arrival time.
  std::function<void(uint32_t ssrc, util::TimeUs send_time,
                     util::TimeUs arrival)>
      media_tap;
};

struct PeerStats {
  uint64_t rtp_sent = 0;
  uint64_t rtcp_sent = 0;
  uint64_t stun_sent = 0;
  uint64_t retransmissions_sent = 0;
  uint64_t keyframes_on_pli = 0;
  uint64_t remb_received = 0;
  uint64_t nack_received = 0;
  uint64_t pli_received = 0;
  uint64_t stun_rtt_samples = 0;
  double last_stun_rtt_ms = 0.0;
};

class Peer : public sim::Host, public core::SignalingClient {
 public:
  Peer(sim::Scheduler& sched, sim::Network& network, const PeerConfig& cfg);
  ~Peer() override;

  // Joins a meeting through a signaling server (SDP offer/answer + legs);
  // works against both Scallop's controller and the software SFU.
  void Join(core::SignalingServer& server, core::MeetingId meeting);
  void Leave();

  // sim::Host
  void OnPacket(net::PacketPtr pkt) override;

  // core::SignalingClient
  net::Endpoint AllocateLocalLeg(core::ParticipantId sender) override;
  void OnRemoteLegReady(core::ParticipantId sender, uint32_t video_ssrc,
                        uint32_t audio_ssrc,
                        net::Endpoint sfu_endpoint) override;
  void OnRemoteSenderLeft(core::ParticipantId sender) override;

  core::ParticipantId id() const { return id_; }
  net::Ipv4 address() const { return cfg_.address; }
  uint32_t video_ssrc() const { return video_ssrc_; }
  uint32_t audio_ssrc() const { return audio_ssrc_; }
  const PeerStats& stats() const { return stats_; }
  media::SvcEncoder* encoder() { return encoder_.get(); }

  // Receive pipeline for a remote sender (nullptr if none).
  const media::VideoReceiver* video_receiver(core::ParticipantId sender) const;
  const media::AudioReceiver* audio_receiver(core::ParticipantId sender) const;
  const bwe::ReceiverBandwidthEstimator* bwe_for(
      core::ParticipantId sender) const;
  // All remote senders currently known.
  std::vector<core::ParticipantId> remote_senders() const;

 private:
  struct RemoteLeg {
    core::ParticipantId sender = 0;
    net::Endpoint local;       // our endpoint for this leg
    net::Endpoint sfu;         // SFU endpoint for this leg
    uint32_t video_ssrc = 0;
    uint32_t audio_ssrc = 0;
    std::unique_ptr<media::VideoReceiver> video;
    std::unique_ptr<media::AudioReceiver> audio;
    std::unique_ptr<bwe::ReceiverBandwidthEstimator> bwe;
    uint32_t highest_video_seq_ext = 0;  // for RR report blocks
    uint64_t video_packets = 0;
    util::TimeUs last_rr = 0;  // standalone receiver reports
  };

  void StartMedia();
  void SendVideoFrame();
  void SendAudioFrame();
  void SendSenderReports();
  void SendReceiverFeedback(RemoteLeg& leg, bool include_remb);
  void SendStun();
  void Tick();
  void HandleMediaPacket(RemoteLeg& leg, const rtp::RtpPacket& pkt,
                         util::TimeUs arrival, size_t wire_bytes);
  void HandleRtcp(RemoteLeg* leg, std::span<const uint8_t> payload);
  void HandleNack(const rtp::Nack& nack);
  void Transmit(net::Endpoint from, net::Endpoint to,
                std::vector<uint8_t> payload);
  RemoteLeg* LegByLocalPort(uint16_t port);

  sim::Scheduler& sched_;
  sim::Network& network_;
  PeerConfig cfg_;
  core::SignalingServer* server_ = nullptr;
  core::MeetingId meeting_ = 0;
  core::ParticipantId id_ = 0;

  net::Endpoint media_local_;  // uplink leg, local side
  net::Endpoint uplink_sfu_;   // uplink leg, SFU side
  uint16_t next_local_port_;
  uint32_t video_ssrc_ = 0;
  uint32_t audio_ssrc_ = 0;

  std::unique_ptr<media::SvcEncoder> encoder_;
  std::unique_ptr<media::Packetizer> packetizer_;
  std::unique_ptr<media::AudioSource> audio_source_;
  uint32_t video_packet_count_ = 0;
  uint32_t video_octet_count_ = 0;
  uint32_t audio_packet_count_ = 0;
  uint32_t audio_octet_count_ = 0;

  std::map<core::ParticipantId, RemoteLeg> legs_;          // by sender
  std::map<uint16_t, core::ParticipantId> port_to_sender_;
  // Direct port -> leg index for the per-packet receive path (legs_ is
  // node-based, so RemoteLeg addresses are stable).
  std::unordered_map<uint16_t, RemoteLeg*> port_to_leg_;

  // Retransmission history of sent video packets (wire bytes by seq).
  std::map<uint16_t, std::vector<uint8_t>> history_;
  std::deque<uint16_t> history_order_;

  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
  std::map<uint64_t, util::TimeUs> stun_inflight_;  // tid hash -> send time
  uint64_t stun_counter_ = 0;

  PeerStats stats_;
};

}  // namespace scallop::client
