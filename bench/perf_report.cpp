#include "perf_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace scallop::bench {
namespace {

// Emits doubles with enough digits to round-trip, but prints integral
// values without a trailing ".000000" so params stay readable.
std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

// Pulls the value of `"key": <tok>` out of a single JSON line. Supports
// exactly the output of ToJson(); not a general parser.
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* out) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  size_t end;
  if (pos < line.size() && line[pos] == '"') {
    ++pos;
    end = line.find('"', pos);
    if (end == std::string::npos) return false;
  } else {
    end = line.find_first_of(",}", pos);
    if (end == std::string::npos) return false;
  }
  *out = line.substr(pos, end - pos);
  return true;
}

}  // namespace

void PerfReport::AddMetric(const std::string& name, double value,
                           const std::string& unit, bool higher_is_better) {
  metrics_.push_back(PerfMetric{name, value, unit, higher_is_better});
}

void PerfReport::AddParam(const std::string& name, double value) {
  params_.push_back(PerfParam{name, value});
}

const PerfMetric* PerfReport::FindMetric(const std::string& name) const {
  for (const auto& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string PerfReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"scallop-bench-v1\",\n";
  out << "  \"area\": \"" << area_ << "\",\n";
  out << "  \"metrics\": [\n";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const auto& m = metrics_[i];
    out << "    {\"name\": \"" << m.name << "\", \"value\": "
        << FormatNumber(m.value) << ", \"unit\": \"" << m.unit
        << "\", \"higher_is_better\": " << (m.higher_is_better ? "true" : "false")
        << "}" << (i + 1 < metrics_.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"params\": [\n";
  for (size_t i = 0; i < params_.size(); ++i) {
    out << "    {\"name\": \"" << params_[i].name << "\", \"value\": "
        << FormatNumber(params_[i].value) << "}"
        << (i + 1 < params_.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string PerfReport::WriteJson() const {
  const char* dir = std::getenv("SCALLOP_BENCH_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + area_ + ".json"
                         : "BENCH_" + area_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "perf_report: cannot write %s\n", path.c_str());
    return "";
  }
  out << ToJson();
  std::printf("wrote %s\n", path.c_str());
  return path;
}

std::optional<PerfReport> PerfReport::Parse(const std::string& json) {
  std::istringstream in(json);
  std::string line;
  std::optional<PerfReport> report;
  bool in_metrics = false;
  bool in_params = false;
  bool saw_schema = false;
  while (std::getline(in, line)) {
    std::string value;
    if (ExtractField(line, "schema", &value)) {
      if (value != "scallop-bench-v1") return std::nullopt;
      saw_schema = true;
    } else if (ExtractField(line, "area", &value)) {
      report.emplace(value);
    } else if (line.find("\"metrics\"") != std::string::npos) {
      in_metrics = true;
      in_params = false;
    } else if (line.find("\"params\"") != std::string::npos) {
      in_params = true;
      in_metrics = false;
    } else if (ExtractField(line, "name", &value)) {
      if (!report) return std::nullopt;
      std::string value_str;
      if (!ExtractField(line, "value", &value_str)) return std::nullopt;
      double num = std::strtod(value_str.c_str(), nullptr);
      if (in_metrics) {
        std::string unit, hib;
        if (!ExtractField(line, "unit", &unit)) return std::nullopt;
        if (!ExtractField(line, "higher_is_better", &hib)) return std::nullopt;
        report->AddMetric(value, num, unit, hib == "true");
      } else if (in_params) {
        report->AddParam(value, num);
      }
    }
  }
  if (!report || !saw_schema) return std::nullopt;
  return report;
}

}  // namespace scallop::bench
