// Table 3: Tofino resource usage of the Scallop data plane. Pipeline
// structure rows (parse depth, stages, PHV, xbars, ...) are constants of
// the compiled P4 program carried from the paper; capacity rows (SRAM,
// TCAM, PRE, egress throughput) are reported live from the simulator's
// allocations under a campus-peak-style load.
#include <cstdio>

#include "bench_common.hpp"
#include "core/capacity.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace scallop;
  bench::Header("Table 3: Tofino data-plane resource usage");

  testbed::TestbedConfig cfg;
  cfg.peer.encoder.start_bitrate_bps = 700'000;
  testbed::ScallopTestbed bed(cfg);

  // Campus-peak-style load (scaled): several concurrent meetings of
  // different sizes, all media flowing through the data plane.
  const int kMeetings = bench::FullScale() ? 12 : 5;
  for (int m = 0; m < kMeetings; ++m) {
    auto meeting = bed.CreateMeeting();
    int size = 2 + m % 3;  // mix of 2-4 party meetings
    for (int p = 0; p < size; ++p) {
      bed.AddPeer().Join(bed.controller(), meeting);
    }
  }
  double seconds = bench::FullScale() ? 60.0 : 15.0;
  bed.RunFor(seconds);

  auto report = bed.sw().resources().Report(
      seconds, bed.sw().pre().tree_count(), bed.sw().pre().node_count());
  std::printf("%s\n", bed.sw().resources().FormatTable3(report).c_str());

  std::printf("Installed tables:\n");
  for (const auto& t : report.tables) {
    std::printf("  %-16s %8zu / %8zu entries (%s, %zu bits/entry)\n",
                t.name.c_str(), t.occupied, t.capacity,
                t.tcam ? "TCAM" : "SRAM", t.entry_bits);
  }

  // Max-utilization egress throughput from the capacity model (quadratic
  // growth; paper reports 197 Gb/s at max utilization).
  core::CapacityModel model;
  auto b = model.Evaluate(core::Workload{10, 10, 2});
  double max_meetings = b.ScallopWorst();
  double max_tput_gbps =
      max_meetings * 10 * 9 * model.hardware().stream_bitrate_bps / 1e9;
  std::printf("\nEgress throughput at max RA-SR utilization (model): "
              "%.0f Gb/s (paper: 197 Gb/s)\n",
              max_tput_gbps);
  return 0;
}
