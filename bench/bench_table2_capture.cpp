// Table 2: summary of a 12-hour campus capture window, from the synthetic
// campus model (the paper's capture cannot be redistributed; the model is
// calibrated to its aggregate statistics).
#include <cstdio>

#include "bench_common.hpp"
#include "trace/campus.hpp"

int main() {
  using namespace scallop;
  bench::Header("Table 2: campus capture summary (weekday 12 h window)");

  trace::CampusModel model;
  trace::CaptureSummary s = model.Summarize(12.0);

  std::printf("Capture duration    %.0f h          (paper: 12 h)\n", s.hours);
  std::printf("Zoom packets        %.0f M (%.0f/s) (paper: 1,846 M, 42,733/s)\n",
              s.packets_millions, s.packets_per_second);
  std::printf("Zoom flows          %lu             (paper: 583,777)\n",
              static_cast<unsigned long>(s.flows));
  std::printf("Zoom data           %.0f GB (%.1f Mbit/s) (paper: 1,203 GB, "
              "222.9 Mbit/s)\n",
              s.gigabytes, s.avg_mbps);
  std::printf("RTP media streams   %lu             (paper: 59,020)\n",
              static_cast<unsigned long>(s.rtp_streams));
  bench::Note("\nScope note: the paper's capture spans ALL Zoom traffic "
              "crossing the campus border (any host), while this model "
              "synthesizes only the account-hosted meetings of the API "
              "dataset; flow/stream counts differ by that population "
              "factor (~20x), rate-type rows land in the same regime.");
  return 0;
}
