// Fleet-scale frontier bench -> BENCH_fleet_scale.json. ROADMAP's target
// is "fleet{16}, 1k+ peers"; today's benches stopped at fleet{4} and ~40
// peers. This leg runs a fleet{12} with 216 peers (36 meetings x 6) for a
// few simulated seconds and records sim-s/wall-s, turning the scale
// frontier into a tracked number. CI runs it on every push, so it must
// finish in single-digit wall seconds.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "perf_report.hpp"

int main() {
  using namespace scallop;
  bench::Header("Perf: fleet{12} scale frontier");

  const bool full = bench::FullScale();
  const int switches = 12;
  const int meetings = 36;
  const int peers = 6;
  const double duration_s = full ? 10.0 : 3.0;

  harness::ScenarioSpec spec = harness::ScenarioSpec::Uniform(
      "perf-fleet-scale", meetings, peers, duration_s);
  spec.base.peer.encoder.start_bitrate_bps = 700'000;
  spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
  spec.sample_interval_s = 1.0;
  spec.WithBackend(testbed::BackendChoice::Fleet(switches));

  harness::ScenarioRunner runner(spec);
  bench::WallTimer timer;
  const harness::ScenarioMetrics& m = runner.Run();
  double wall = timer.Seconds();

  if (m.switch_packets_in == 0 || m.WorstDeliveryFloor() < 10) {
    std::printf("FAIL: fleet{%d} scale run delivered no media\n", switches);
    return 1;
  }

  double rate = duration_s / wall;
  std::printf("fleet{%d}, %d peers: %.2f sim-s in %.2f wall-s = %.3g "
              "sim-s/wall-s\n",
              switches, meetings * peers, duration_s, wall, rate);

  bench::PerfReport report("fleet_scale");
  report.AddMetric("sim_s_per_wall_s", rate, "sim-s/wall-s");
  report.AddMetric("wall_s", wall, "s", /*higher_is_better=*/false);
  report.AddParam("switches", switches);
  report.AddParam("meetings", meetings);
  report.AddParam("peers_per_meeting", peers);
  report.AddParam("duration_s", duration_s);
  report.WriteJson();
  return 0;
}
