// Table 1: per-participant packet/byte taxonomy of a three-party Scallop
// meeting and the resulting control/data-plane split.
// Paper: 96.46% of packets and 99.65% of bytes stay in the data plane.
#include <cstdio>
#include <map>

#include "av1/dependency_descriptor.hpp"
#include "bench_common.hpp"
#include "rtp/classifier.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_packet.hpp"
#include "testbed/testbed.hpp"

namespace {

struct ClassCount {
  uint64_t packets = 0;
  uint64_t bytes = 0;
};

}  // namespace

int main() {
  using namespace scallop;
  bench::Header("Table 1: packets per participant sent to the SFU");

  const double kDuration = bench::FullScale() ? 600.0 : 120.0;

  testbed::TestbedConfig cfg;
  // 720p-equivalent AV1 video (~2.2 Mb/s, ~235 pkts/s) + audio, as in the
  // paper's three-party trace.
  cfg.peer.encoder.start_bitrate_bps = 2'200'000;
  cfg.peer.encoder.max_bitrate_bps = 2'400'000;
  cfg.peer.encoder.key_frame_interval = util::Seconds(8.3);
  testbed::ScallopTestbed bed(cfg);

  client::Peer& p1 = bed.AddPeer();
  client::Peer& p2 = bed.AddPeer();
  client::Peer& p3 = bed.AddPeer();

  // Classify every packet participant 1 sends to the SFU.
  std::map<std::string, ClassCount> counts;
  net::Ipv4 tracked = net::Ipv4(10, 0, 0, 1);
  bed.sw().SetIngressTap([&](const net::Packet& pkt) {
    if (pkt.src.addr != tracked) return;
    std::string klass;
    switch (rtp::Classify(pkt.payload_span())) {
      case rtp::PayloadKind::kStun:
        klass = "STUN*";
        break;
      case rtp::PayloadKind::kRtp: {
        auto parsed = rtp::RtpPacket::Parse(pkt.payload_span());
        bool extended_dd = false;
        bool video = false;
        if (parsed.has_value()) {
          const auto* ext = parsed->FindExtension(av1::kDdExtensionId);
          if (ext != nullptr) {
            video = true;
            extended_dd = ext->data.size() > 3;
          }
        }
        klass = extended_dd ? "- AV1 DS*" : (video ? "- Video" : "- Audio");
        break;
      }
      case rtp::PayloadKind::kRtcp: {
        uint8_t pt = pkt.payload.size() > 1 ? pkt.payload[1] : 0;
        if (pt == rtp::kRtcpSr || pt == rtp::kRtcpSdes) {
          klass = "- SR/SDES";
        } else if (core::CompoundContainsRemb(pkt.payload_span())) {
          klass = "- RR/REMB*";
        } else if (pt == rtp::kRtcpRr) {
          klass = "- RR*";
        } else {
          klass = "- NACK/PLI*";
        }
        break;
      }
      default:
        klass = "other";
    }
    counts[klass].packets += 1;
    counts[klass].bytes += pkt.payload.size();
  });

  auto meeting = bed.CreateMeeting();
  p1.Join(bed.controller(), meeting);
  p2.Join(bed.controller(), meeting);
  p3.Join(bed.controller(), meeting);
  bed.RunFor(kDuration);

  auto get = [&](const std::string& k) { return counts[k]; };
  ClassCount video = get("- Video"), audio = get("- Audio"),
             ds = get("- AV1 DS*"), sr = get("- SR/SDES"), rr = get("- RR*"),
             remb = get("- RR/REMB*"), nack = get("- NACK/PLI*"),
             stun = get("STUN*");

  ClassCount rtp{video.packets + audio.packets + ds.packets,
                 video.bytes + audio.bytes + ds.bytes};
  ClassCount rtcp{sr.packets + rr.packets + remb.packets + nack.packets,
                  sr.bytes + rr.bytes + remb.bytes + nack.bytes};
  uint64_t total_p = rtp.packets + rtcp.packets + stun.packets;
  uint64_t total_b = rtp.bytes + rtcp.bytes + stun.bytes;
  // Control plane: classes marked * (copies analyzed in software).
  ClassCount ctrl{ds.packets + rr.packets + remb.packets + stun.packets +
                      nack.packets,
                  ds.bytes + rr.bytes + remb.bytes + stun.bytes + nack.bytes};
  ClassCount data{total_p - ctrl.packets, total_b - ctrl.bytes};

  auto row = [&](const char* name, const ClassCount& c) {
    std::printf("%-12s %10lu %7.2f%% %9.2f/s %10.0f KB %7.2f%%\n", name,
                static_cast<unsigned long>(c.packets),
                100.0 * static_cast<double>(c.packets) /
                    static_cast<double>(total_p),
                static_cast<double>(c.packets) / kDuration,
                static_cast<double>(c.bytes) / 1000.0,
                100.0 * static_cast<double>(c.bytes) /
                    static_cast<double>(total_b));
  };

  std::printf("%-12s %10s %8s %11s %13s %8s\n", "Proto/Type", "Packets",
              "Pct.", "Per sec.", "KBytes", "Pct.");
  row("RTP", rtp);
  row("- Audio", audio);
  row("- Video", video);
  row("- AV1 DS*", ds);
  row("RTCP", rtcp);
  row("- SR/SDES", sr);
  row("- RR*", rr);
  row("- RR/REMB*", remb);
  row("- NACK/PLI*", nack);
  row("STUN*", stun);
  row("Ctrl. Plane", ctrl);
  row("Data Plane", data);
  row("Total", ClassCount{total_p, total_b});

  std::printf("\nData-plane share: %.2f%% of packets, %.2f%% of bytes "
              "(paper: 96.46%% / 99.65%%)\n",
              100.0 * static_cast<double>(data.packets) /
                  static_cast<double>(total_p),
              100.0 * static_cast<double>(data.bytes) /
                  static_cast<double>(total_b));
  return 0;
}
