// Figures 3 & 4: QoE collapse on an under-provisioned software SFU.
// Meetings of 10 participants are built up one join at a time on a
// single-core split-proxy SFU; we report the first meeting's receive
// jitter (median / p95 / p99) and frame rate as total participants grow.
// Paper shape: tail jitter exceeds 100 ms and fps collapses past ~60-80
// participants (100% CPU around 80).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace scallop;
  bench::Header("Figures 3+4: software SFU overload (jitter & frame rate)");

  bool full = bench::FullScale();
  // Default: a CI-sized run — 40 participants with per-packet costs scaled
  // up 2.5x so the single core saturates (and QoE collapses) around ~32
  // participants instead of the paper's ~80. SCALLOP_FULL=1 restores the
  // paper-calibrated costs, ~100-participant build-up and join cadence.
  const int kMeetings = full ? 15 : 4;
  const int kPerMeeting = 10;
  const double kJoinEvery = full ? 10.0 : 1.0;  // seconds between joins

  testbed::TestbedConfig cfg;
  cfg.software.cores = 1;  // pinned to one core, as in the paper
  // Our modeled clients send ~700 kb/s (140 pkts/s) instead of the paper's
  // 2.2 Mb/s 720p streams (285 pkts/s); per-packet costs are scaled
  // inversely so the single core saturates at the paper's ~80 participants
  // (full scale) or ~32 (scaled default, 2.5x costlier packets).
  cfg.software.base_service_us = full ? 17.0 : 42.5;
  cfg.software.per_replica_us = full ? 8.0 : 20.0;
  cfg.peer.encoder.start_bitrate_bps = 700'000;
  cfg.peer.encoder.max_bitrate_bps = 900'000;
  testbed::SoftwareTestbed bed(cfg);

  std::vector<core::MeetingId> meetings;
  for (int m = 0; m < kMeetings; ++m) meetings.push_back(bed.CreateMeeting());

  std::printf("%12s %10s %12s %12s %12s %10s %8s\n", "participants", "cpu%",
              "jitter_p50", "jitter_p95", "jitter_p99", "mean_fps", "drops");
  std::printf("%12s %10s %12s %12s %12s %10s %8s\n", "", "", "[ms]", "[ms]",
              "[ms]", "[fps]", "");

  int joined = 0;
  double last_busy_us = 0.0;
  util::TimeUs last_report = 0;
  for (int m = 0; m < kMeetings; ++m) {
    for (int p = 0; p < kPerMeeting; ++p) {
      client::Peer& peer = bed.AddPeer();
      peer.Join(bed.sfu(), meetings[static_cast<size_t>(m)]);
      ++joined;
      bed.RunFor(kJoinEvery);

      if (joined % 10 == 0) {
        double cpu_pct = 100.0 *
                         (bed.sfu().stats().cpu_busy_us - last_busy_us) /
                         static_cast<double>(bed.sched().now() - last_report);
        last_busy_us = bed.sfu().stats().cpu_busy_us;
        last_report = bed.sched().now();
        // First meeting's stats (the paper measures meeting #1).
        util::SampleSet jitter;
        util::RunningStats fps;
        size_t first_members = std::min<size_t>(kPerMeeting, bed.peers().size());
        for (size_t i = 0; i < first_members; ++i) {
          client::Peer& member = *bed.peers()[i];
          for (auto sender : member.remote_senders()) {
            const auto* rx = member.video_receiver(sender);
            if (rx == nullptr || rx->stats().packets_received == 0) continue;
            jitter.Add(rx->jitter().JitterMs());
            fps.Add(rx->RecentFps(bed.sched().now(), util::Seconds(2)));
          }
        }
        std::printf("%12d %10.1f %12.2f %12.2f %12.2f %10.1f %8lu\n", joined,
                    std::min(cpu_pct, 100.0), jitter.Percentile(50),
                    jitter.Percentile(95), jitter.Percentile(99), fps.mean(),
                    static_cast<unsigned long>(bed.sfu().stats().packets_dropped));
      }
    }
  }

  bench::Note("\nPaper: tail jitter >100 ms and fps collapse past ~60-80 "
              "participants; CPU saturates near 80.");
  if (!full) {
    bench::Note("(scaled run: 40 participants, 2.5x per-packet cost so the "
                "collapse appears near ~32; set SCALLOP_FULL=1 for the "
                "paper-calibrated ~100-participant build-up)");
  }
  return 0;
}
