// Micro-benchmarks of the per-packet primitives: wire-format parsing,
// classification, PRE replication, sequence rewriting and GCC updates.
// These bound the simulator's fidelity and document the relative cost of
// the operations Scallop moves into hardware.
#include <benchmark/benchmark.h>

#include "av1/dependency_descriptor.hpp"
#include "bwe/estimator.hpp"
#include "core/seqrewrite.hpp"
#include "media/encoder.hpp"
#include "media/packetizer.hpp"
#include "rtp/classifier.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_packet.hpp"
#include "switchsim/parser.hpp"
#include "switchsim/pre.hpp"
#include "util/random.hpp"

namespace {

using namespace scallop;

std::vector<uint8_t> MakeVideoPacket() {
  rtp::RtpPacket pkt;
  pkt.payload_type = 96;
  pkt.sequence_number = 1234;
  pkt.timestamp = 90'000;
  pkt.ssrc = 0xABCD;
  av1::DependencyDescriptor dd;
  dd.template_id = 3;
  dd.frame_number = 77;
  pkt.SetExtension(av1::kDdExtensionId, dd.Serialize());
  pkt.SetExtension(media::kAbsSendTimeExtensionId,
                   media::EncodeAbsSendTime(123'456));
  pkt.payload.assign(1200, 0x55);
  return pkt.Serialize();
}

void BM_RtpParse(benchmark::State& state) {
  auto wire = MakeVideoPacket();
  for (auto _ : state) {
    auto parsed = rtp::RtpPacket::Parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RtpParse);

void BM_RtpSerialize(benchmark::State& state) {
  rtp::RtpPacket pkt;
  pkt.payload.assign(1200, 0x55);
  av1::DependencyDescriptor dd;
  pkt.SetExtension(av1::kDdExtensionId, dd.Serialize());
  for (auto _ : state) {
    auto wire = pkt.Serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_RtpSerialize);

void BM_Classify(benchmark::State& state) {
  auto wire = MakeVideoPacket();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtp::Classify(wire));
  }
}
BENCHMARK(BM_Classify);

void BM_SeqPatchInPlace(benchmark::State& state) {
  auto wire = MakeVideoPacket();
  uint16_t seq = 0;
  for (auto _ : state) {
    rtp::PatchSequenceNumber(wire, ++seq);
    benchmark::DoNotOptimize(wire.data());
  }
}
BENCHMARK(BM_SeqPatchInPlace);

void BM_DepthAwareLocate(benchmark::State& state) {
  // The data plane's actual DD extraction path (paper Appendix E) vs the
  // full software parse below.
  auto wire = MakeVideoPacket();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        switchsim::LocateRtpExtension(wire, av1::kDdExtensionId));
  }
}
BENCHMARK(BM_DepthAwareLocate);

void BM_DdPeek(benchmark::State& state) {
  av1::DependencyDescriptor dd;
  dd.template_id = 4;
  dd.frame_number = 99;
  auto bytes = dd.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(av1::PeekMandatory(bytes));
  }
}
BENCHMARK(BM_DdPeek);

void BM_RtcpCompoundParse(benchmark::State& state) {
  rtp::ReceiverReport rr;
  rr.blocks.resize(1);
  rtp::Remb remb;
  remb.bitrate_bps = 1'000'000;
  remb.media_ssrcs = {1};
  std::vector<rtp::RtcpMessage> msgs{rr, remb};
  auto wire = rtp::SerializeCompound(msgs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtp::ParseCompound(wire));
  }
}
BENCHMARK(BM_RtcpCompoundParse);

void BM_PreReplicate(benchmark::State& state) {
  switchsim::ReplicationEngine pre;
  pre.CreateTree(1);
  int n = static_cast<int>(state.range(0));
  for (int p = 1; p <= n; ++p) {
    pre.AddNode(1, switchsim::L1Node{static_cast<uint32_t>(p),
                                     static_cast<uint16_t>(p), 0, false,
                                     {static_cast<uint32_t>(p)}});
  }
  pre.MapL2Xid(1, {1});
  for (auto _ : state) {
    auto replicas = pre.Replicate(1, 0, 1, 1);
    benchmark::DoNotOptimize(replicas);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PreReplicate)->Arg(3)->Arg(10)->Arg(50);

void BM_SlmProcess(benchmark::State& state) {
  core::SlmRewriter rw(core::SkipCadence::ForDecodeTarget(1, 1));
  uint16_t seq = 0;
  uint16_t frame = 0;
  for (auto _ : state) {
    ++seq;
    if (seq % 2 == 0) ++frame;
    core::RewritePacketView v{seq, frame, true, true, frame % 2 == 0};
    benchmark::DoNotOptimize(rw.Process(v));
  }
}
BENCHMARK(BM_SlmProcess);

void BM_SlrProcess(benchmark::State& state) {
  core::SlrRewriter rw(core::SkipCadence::ForDecodeTarget(1, 1));
  uint16_t seq = 0;
  uint16_t frame = 0;
  for (auto _ : state) {
    ++seq;
    if (seq % 2 == 0) ++frame;
    core::RewritePacketView v{seq, frame, true, true, frame % 2 == 0};
    benchmark::DoNotOptimize(rw.Process(v));
  }
}
BENCHMARK(BM_SlrProcess);

void BM_GccUpdate(benchmark::State& state) {
  bwe::ReceiverBandwidthEstimator est;
  util::Rng rng(1);
  util::TimeUs t = 0;
  for (auto _ : state) {
    t += 8'000;
    est.OnPacket(t + static_cast<util::TimeUs>(rng.Uniform(0, 500)), t, 1200);
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_GccUpdate);

void BM_EncoderFrame(benchmark::State& state) {
  media::SvcEncoder enc(media::SvcEncoderConfig{}, 7);
  media::Packetizer packetizer(media::PacketizerConfig{.ssrc = 1});
  util::TimeUs t = 0;
  for (auto _ : state) {
    t += 33'333;
    auto frame = enc.NextFrame(t);
    auto pkts = packetizer.Packetize(frame, t);
    benchmark::DoNotOptimize(pkts);
  }
}
BENCHMARK(BM_EncoderFrame);

}  // namespace
