// Figures 15, 16 and 17: scalability of Scallop vs a 32-core software SFU
// from the capacity model (hardware constants calibrated to the paper's
// anchors — see DESIGN.md §5).
//   Fig. 15: improvement band (min/max over design+rewriter variants).
//   Fig. 16: best/worst-case supported meetings (log scale in the paper).
//   Fig. 17: per-bottleneck lines (NRA, RA-R, RA-SR, S-LM, S-LR,
//            bandwidth, software).
#include <cstdio>

#include "bench_common.hpp"
#include "core/capacity.hpp"

int main() {
  using namespace scallop;
  core::CapacityModel model;

  bench::Header("Figure 15: Scallop scalability gain over software");
  std::printf("%4s %12s %12s\n", "N", "improve_min", "improve_max");
  double band_lo = 1e18, band_hi = 0;
  for (int n : {2, 3, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    auto [lo, hi] = model.ImprovementRange(n);
    band_lo = std::min(band_lo, lo);
    band_hi = std::max(band_hi, hi);
    std::printf("%4d %12.1f %12.1f\n", n, lo, hi);
  }
  std::printf("Band overall: %.0fx - %.0fx (paper: 7-210x)\n", band_lo,
              band_hi);

  bench::Header("Figure 16: best/worst-case supported meetings");
  std::printf("%4s %14s %14s %14s %14s\n", "N", "scallop_min", "scallop_max",
              "software_min", "software_max");
  for (int n : {2, 5, 10, 20, 40, 60, 80, 100}) {
    // max: one sender; min: all N send (paper's bounds).
    core::Workload all_send{n, n, 2};
    core::Workload one_send{n, 1, 2};
    auto b_all = model.Evaluate(all_send);
    auto b_one = model.Evaluate(one_send);
    std::printf("%4d %14.0f %14.0f %14.0f %14.0f\n", n,
                b_all.ScallopWorst(), b_one.ScallopBest(), b_all.software,
                b_one.software);
  }

  bench::Header("Figure 17: per-bottleneck capacity lines (all senders)");
  std::printf("%4s %10s %10s %10s %10s %10s %11s %10s\n", "N", "NRA", "RA-R",
              "RA-SR", "S-LM", "S-LR", "bandwidth", "software");
  for (int n : {3, 5, 10, 20, 30, 50, 70, 100}) {
    auto b = model.Evaluate(core::Workload{n, n, 2});
    std::printf("%4d %10.0f %10.0f %10.0f %10.0f %10.0f %11.0f %10.1f\n", n,
                b.nra, b.ra_r, b.ra_sr, b.slm, b.slr, b.bandwidth,
                b.software);
  }

  bench::Header("Headline capacities (paper §6.1)");
  auto ten = model.Evaluate(core::Workload{10, 10, 2});
  auto two = model.Evaluate(core::Workload{2, 2, 2});
  std::printf("NRA:        %8.0f meetings   (paper 128K)\n", ten.nra);
  std::printf("RA-R:       %8.0f meetings   (paper 42.7K)\n", ten.ra_r);
  std::printf("RA-SR N=10: %8.0f meetings   (paper 4.3K; server 192)\n",
              ten.ra_sr);
  std::printf("Two-party:  %8.0f meetings   (paper 533K; server 4.8K)\n",
              two.two_party);
  return 0;
}
