// Figure 2: number of media streams at the SFU per meeting as a function
// of meeting size, from the synthetic campus dataset (Appendix B model).
// Paper shape: median tracks well below the dashed 2N^2 bound; 10-party
// meetings already reach ~200 streams, 25-party meetings exceed 700.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/campus.hpp"

int main() {
  using namespace scallop;
  bench::Header("Figure 2: media streams at the SFU vs meeting size");

  trace::CampusModel model;
  auto rows = model.StreamsPerMeetingSize(25);

  std::printf("%13s %9s %12s %13s %12s %12s\n", "participants", "meetings",
              "min_streams", "median", "max", "bound 2N^2");
  for (const auto& r : rows) {
    std::printf("%13d %9d %12d %13.0f %12d %12d\n", r.participants,
                r.meetings, r.min_streams, r.median_streams, r.max_streams,
                r.theoretical_bound);
  }

  // Paper call-outs.
  for (const auto& r : rows) {
    if (r.participants == 10) {
      std::printf("\n10-party meetings: up to %d streams (paper: ~200)\n",
                  r.max_streams);
    }
    if (r.participants == 25) {
      std::printf("25-party meetings: up to %d streams (paper: >700, "
                  "theoretical max 1250)\n",
                  r.max_streams);
    }
  }
  return 0;
}
