// Figure 19: per-packet RTP round-trip time in a two-party call, Scallop's
// hardware data plane vs the software split-proxy SFU.
// Paper: Scallop cuts median latency 26.8x and p99 8.5x.
// RTT here = 2x the one-way path latency of each media packet (send
// timestamp from the abs-send-time extension vs arrival), which includes
// the access links plus one SFU traversal — the same quantity for both
// systems, so only the SFU stage differs.
#include <cstdio>

#include "bench_common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace scallop;

// The paper's testbed connects clients to the SFU over a direct 1 Gbit/s
// link, so per-packet latency is dominated by the SFU stage rather than
// access-link serialization. Mirror that here.
sim::LinkConfig TestbedLink() {
  sim::LinkConfig link;
  link.rate_bps = 1e9;
  link.prop_delay = util::Millis(0.2);
  link.jitter_stddev = 4;  // NIC/kernel noise on the client side
  // Rare host-side latency spikes (interrupt coalescing, GC pauses on the
  // measurement harness) — identical for both systems under test.
  link.reorder_rate = 0.015;
  link.reorder_delay = util::Millis(0.06);
  return link;
}

util::SampleSet RunScallop(double seconds) {
  testbed::TestbedConfig cfg;
  cfg.client_uplink = TestbedLink();
  cfg.client_downlink = TestbedLink();
  // Audio-only probe streams: one constant-size packet per 20 ms, so the
  // per-packet latency isolates the SFU stage (video bursts would add
  // identical serialization queueing to both systems and drown it).
  cfg.peer.send_video = false;
  util::SampleSet rtt_ms;
  cfg.peer.media_tap = [&rtt_ms](uint32_t, util::TimeUs send,
                                 util::TimeUs arrival) {
    rtt_ms.Add(2.0 * util::ToMillis(arrival - send));
  };
  testbed::ScallopTestbed bed(cfg);
  client::Peer& a = bed.AddPeer();
  client::Peer& b = bed.AddPeer();
  auto meeting = bed.CreateMeeting();
  a.Join(bed.controller(), meeting);
  b.Join(bed.controller(), meeting);
  bed.RunFor(seconds);
  return rtt_ms;
}

util::SampleSet RunSoftware(double seconds) {
  testbed::TestbedConfig cfg;
  cfg.client_uplink = TestbedLink();
  cfg.client_downlink = TestbedLink();
  cfg.peer.send_video = false;
  util::SampleSet rtt_ms;
  cfg.peer.media_tap = [&rtt_ms](uint32_t, util::TimeUs send,
                                 util::TimeUs arrival) {
    rtt_ms.Add(2.0 * util::ToMillis(arrival - send));
  };
  testbed::SoftwareTestbed bed(cfg);
  client::Peer& a = bed.AddPeer();
  client::Peer& b = bed.AddPeer();
  auto meeting = bed.CreateMeeting();
  a.Join(bed.sfu(), meeting);
  b.Join(bed.sfu(), meeting);
  bed.RunFor(seconds);
  return rtt_ms;
}

}  // namespace

int main() {
  bench::Header("Figure 19: RTP round-trip time CDF, Scallop vs Mediasoup");
  double seconds = bench::FullScale() ? 120.0 : 30.0;

  util::SampleSet scallop = RunScallop(seconds);
  util::SampleSet software = RunSoftware(seconds);

  // The paper plots SFU-induced latency on a 0-1 ms axis; our RTTs include
  // the (identical) access links, so we subtract the wire floor to isolate
  // the SFU stage, as the paper's testbed measurement does.
  double wire_floor = std::min(scallop.Min(), software.Min()) - 0.01;
  auto strip = [&](const util::SampleSet& in) {
    util::SampleSet out;
    for (double v : in.samples()) out.Add(v - wire_floor);
    return out;
  };
  util::SampleSet sc = strip(scallop);
  util::SampleSet sw = strip(software);

  std::printf("%28s %12s %12s\n", "", "Scallop", "Mediasoup");
  std::printf("%28s %9zu %12zu\n", "packets", sc.size(), sw.size());
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    std::printf("SFU-induced RTT p%-5.1f [ms] %12.4f %12.4f\n", p,
                sc.Percentile(p), sw.Percentile(p));
  }

  double median_ratio = sw.Median() / sc.Median();
  double p99_ratio = sw.Percentile(99) / sc.Percentile(99);
  std::printf("\nmedian ratio: %.1fx (paper 26.8x)   p99 ratio: %.1fx "
              "(paper 8.5x)\n",
              median_ratio, p99_ratio);

  std::printf("\nCDF points (SFU-induced RTT in ms):\n%10s %10s %10s\n",
              "fraction", "scallop", "mediasoup");
  for (double f : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}) {
    std::printf("%10.2f %10.4f %10.4f\n", f, sc.Percentile(100 * f),
                sw.Percentile(100 * f));
  }
  return 0;
}
