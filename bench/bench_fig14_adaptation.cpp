// Figure 14: Scallop-based rate adaptation in a three-party call.
// Participant 3's downlink is constrained twice; the SFU reduces the frame
// rate it forwards to P3 (30 -> 15 -> 7.5 fps) while senders keep encoding
// at full rate and P1/P2 are unaffected. Panels:
//   (a) send frame rate per participant
//   (b) receive frame rate per participant (from each remote sender)
//   (c) receive bitrate at participant 3 per origin sender
//
// The experiment is a ScenarioSpec (same vocabulary as the scenario-matrix
// tests and examples): the two downlink drops are LinkEvents and the
// per-5s panel rows are collected by the runner's sample hook.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace scallop;
  using harness::ScenarioRunner;
  using harness::ScenarioSpec;
  bench::Header("Figure 14: Scallop rate adaptation (P3 constrained twice)");

  bool full = bench::FullScale();
  const double kTotal = full ? 400.0 : 150.0;
  const double kFirstDrop = kTotal * 0.35;
  const double kSecondDrop = kTotal * 0.65;
  const double kStep = 5.0;

  ScenarioSpec spec = ScenarioSpec::Uniform("fig14-adaptation", 1, 3, kTotal);
  spec.base.peer.encoder.start_bitrate_bps = 700'000;
  spec.base.peer.encoder.max_bitrate_bps = 800'000;
  spec.base.peer.encoder.key_frame_interval = util::Seconds(8.3);
  spec.sample_interval_s = kStep;
  // DT1 territory: fits 2 x 0.71 x 800k + audio with headroom.
  spec.WithLinkEvent(
      {.at_s = kFirstDrop, .meeting = 0, .participant = 2, .rate_bps = 1.45e6});
  // DT0 territory: fits 2 x 0.48 x 800k + audio with headroom.
  spec.WithLinkEvent(
      {.at_s = kSecondDrop, .meeting = 0, .participant = 2, .rate_bps = 1.05e6});

  ScenarioRunner runner(spec);
  client::Peer& p1 = runner.peer(0, 0);
  client::Peer& p2 = runner.peer(0, 1);
  client::Peer& p3 = runner.peer(0, 2);

  struct Row {
    double t;
    double tx1, tx2, tx3;
    double rx3_from1, rx3_from2, rx1_from3, rx2_from1;
    double kbps3_from1, kbps3_from2;
    int dt31, dt32;
  };
  std::vector<Row> rows;
  int64_t last_frames1 = 0, last_frames2 = 0, last_frames3 = 0;

  runner.set_sample_hook([&](double t, ScenarioRunner& r) {
    Row row;
    row.t = t;
    auto tx = [&](client::Peer& p, int64_t& last) {
      int64_t now_frames = p.encoder()->frames_produced();
      double fps = static_cast<double>(now_frames - last) / kStep;
      last = now_frames;
      return fps;
    };
    row.tx1 = tx(p1, last_frames1);
    row.tx2 = tx(p2, last_frames2);
    row.tx3 = tx(p3, last_frames3);
    util::TimeUs now = r.backend().sched().now();
    row.rx3_from1 =
        p3.video_receiver(p1.id())->RecentFps(now, util::Seconds(3));
    row.rx3_from2 =
        p3.video_receiver(p2.id())->RecentFps(now, util::Seconds(3));
    row.rx1_from3 =
        p1.video_receiver(p3.id())->RecentFps(now, util::Seconds(3));
    row.rx2_from1 =
        p2.video_receiver(p1.id())->RecentFps(now, util::Seconds(3));
    int64_t sec = now / 1'000'000 - 1;
    row.kbps3_from1 =
        p3.video_receiver(p1.id())->received_bytes_series().SumInSecond(sec) *
        8.0 / 1000.0;
    row.kbps3_from2 =
        p3.video_receiver(p2.id())->received_bytes_series().SumInSecond(sec) *
        8.0 / 1000.0;
    row.dt31 = r.scallop().agent().DecodeTargetOf(p3.id(), p1.id());
    row.dt32 = r.scallop().agent().DecodeTargetOf(p3.id(), p2.id());
    rows.push_back(row);
  });

  const harness::ScenarioMetrics& metrics = runner.Run();

  std::printf("(a,b) frame rates [fps]; (c) receive bitrate at P3 [kbit/s]\n");
  std::printf("%6s | %5s %5s %5s | %7s %7s %7s %7s | %8s %8s | %3s %3s\n",
              "t[s]", "tx1", "tx2", "tx3", "rx3<-1", "rx3<-2", "rx1<-3",
              "rx2<-1", "kbps3<-1", "kbps3<-2", "dt1", "dt2");
  for (const auto& r : rows) {
    std::printf(
        "%6.0f | %5.1f %5.1f %5.1f | %7.1f %7.1f %7.1f %7.1f | %8.0f %8.0f "
        "| %3d %3d\n",
        r.t, r.tx1, r.tx2, r.tx3, r.rx3_from1, r.rx3_from2, r.rx1_from3,
        r.rx2_from1, r.kbps3_from1, r.kbps3_from2, r.dt31, r.dt32);
  }

  // QoE check: adaptation must not break the stream (paper: no freezes,
  // no resolution loss — frame-rate-only reduction).
  const auto& s31 = p3.video_receiver(p1.id())->stats();
  std::printf("\nP3<-P1: decoded %lu frames, %lu undecodable, %lu decoder "
              "breaks, %.0f ms frozen\n",
              static_cast<unsigned long>(s31.frames_decoded),
              static_cast<unsigned long>(s31.frames_undecodable),
              static_cast<unsigned long>(s31.decoder_breaks),
              s31.total_freeze_ms);
  std::printf("\n%s", metrics.Summary().c_str());
  bench::Note("Paper shape: senders keep 30 fps; P3's receive rate steps "
              "30 -> 15 (-> 7.5) fps with bitrate dropping accordingly; "
              "other participants unaffected.");
  return 0;
}
