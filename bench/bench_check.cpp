// Perf regression gate: compares freshly emitted BENCH_*.json reports
// against the committed baselines in bench/baselines/ and fails (exit 1)
// when any higher-is-better metric dropped by more than the threshold
// (default 40%). Informational metrics (higher_is_better=false) are
// printed but never gated — they include raw wall times that CI runner
// noise would otherwise flap on.
//
//   bench_check <baseline_dir> <fresh_dir> [max_drop_fraction]
//
// Every baseline report must have a fresh counterpart, and every gated
// baseline metric must exist in the fresh report — a silently vanished
// bench leg is itself a regression.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "perf_report.hpp"

namespace fs = std::filesystem;
using scallop::bench::PerfReport;

namespace {

std::optional<PerfReport> Load(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return PerfReport::Parse(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_check <baseline_dir> <fresh_dir> "
                 "[max_drop_fraction]\n");
    return 2;
  }
  const fs::path baseline_dir = argv[1];
  const fs::path fresh_dir = argv[2];
  const double max_drop = argc > 3 ? std::strtod(argv[3], nullptr) : 0.40;

  std::vector<fs::path> baselines;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      baselines.push_back(entry.path());
    }
  }
  if (ec || baselines.empty()) {
    std::fprintf(stderr, "bench_check: no BENCH_*.json baselines in %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }
  std::sort(baselines.begin(), baselines.end());

  // Every offending metric is remembered and recapped after the full
  // sweep: a perf-gate failure must be diagnosable from the tail of the
  // CI log in one read, not by scanning thousands of interleaved ok/info
  // rows for the FAIL lines.
  std::vector<std::string> failures;
  char line[256];
  for (const auto& base_path : baselines) {
    auto baseline = Load(base_path);
    if (!baseline) {
      std::printf("FAIL %s: unparsable baseline\n",
                  base_path.filename().string().c_str());
      failures.push_back(base_path.filename().string() +
                         ": unparsable baseline");
      continue;
    }
    auto fresh = Load(fresh_dir / base_path.filename());
    if (!fresh) {
      std::printf("FAIL %s: fresh report missing (bench leg vanished?)\n",
                  base_path.filename().string().c_str());
      failures.push_back(base_path.filename().string() +
                         ": fresh report missing");
      continue;
    }
    for (const auto& m : baseline->metrics()) {
      const auto* f = fresh->FindMetric(m.name);
      if (!m.higher_is_better) {
        if (f != nullptr) {
          std::printf("info %-12s %-28s %12.4g (baseline %.4g)\n",
                      baseline->area().c_str(), m.name.c_str(), f->value,
                      m.value);
        }
        continue;
      }
      if (f == nullptr) {
        std::printf("FAIL %-12s %-28s missing from fresh report\n",
                    baseline->area().c_str(), m.name.c_str());
        std::snprintf(line, sizeof(line), "%-12s %-28s missing from fresh",
                      baseline->area().c_str(), m.name.c_str());
        failures.emplace_back(line);
        continue;
      }
      double ratio = m.value > 0.0 ? f->value / m.value : 1.0;
      bool pass = ratio >= 1.0 - max_drop;
      std::printf("%s %-12s %-28s %12.4g vs %12.4g  (%.2fx)\n",
                  pass ? "ok  " : "FAIL", baseline->area().c_str(),
                  m.name.c_str(), f->value, m.value, ratio);
      if (!pass) {
        std::snprintf(line, sizeof(line),
                      "%-12s %-28s baseline %.4g fresh %.4g ratio %.2fx",
                      baseline->area().c_str(), m.name.c_str(), m.value,
                      f->value, ratio);
        failures.emplace_back(line);
      }
    }
  }

  if (!failures.empty()) {
    std::printf("bench_check: %zu gated metric(s) beyond the %.0f%% drop "
                "threshold:\n",
                failures.size(), max_drop * 100.0);
    for (const auto& f : failures) std::printf("  FAIL %s\n", f.c_str());
    return 1;
  }
  std::printf("bench_check: all gated metrics within threshold\n");
  return 0;
}
