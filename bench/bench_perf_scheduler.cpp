// Scheduler hot-path benchmark -> BENCH_scheduler.json. Two workloads:
//
//   events_per_sec       cancel-heavy: the shape PeriodicTask and the link
//                        layer actually generate — schedule a burst, cancel
//                        half of it before it fires, and (like every
//                        re-armed timer) also cancel a few ids that have
//                        already fired. This is the workload the O(n)
//                        cancelled-list scan melts under.
//   raw_events_per_sec   pure schedule+dispatch throughput, no cancels.
//
// Both golden CSVs depend on FIFO-among-equal-times, so the bench also
// sanity-checks ordering on the way (cheaply, via a running counter).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "perf_report.hpp"
#include "sim/scheduler.hpp"

namespace {

using scallop::bench::PerfReport;
using scallop::bench::WallTimer;
using scallop::sim::Scheduler;

// Schedules `per_round` events per round at a handful of distinct times,
// cancels every other one before it fires, and cancels `stale_cancels`
// already-fired ids (the PeriodicTask destructor pattern). Returns
// events scheduled per wall second.
double CancelHeavy(int rounds, int per_round, int stale_cancels,
                   uint64_t* fired_total) {
  Scheduler s;
  uint64_t fired = 0;
  std::vector<uint64_t> ids(per_round);
  std::vector<uint64_t> old_ids;
  WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    scallop::util::TimeUs base = s.now();
    for (int i = 0; i < per_round; ++i) {
      // 16 distinct timestamps per round: bursts of equal-time events,
      // like a link delivering a frame's packets.
      ids[i] = s.At(base + 1 + (i & 15), [&fired] { ++fired; });
    }
    for (int i = 0; i < per_round; i += 2) s.Cancel(ids[i]);
    // Cancel ids that fired in an earlier round — documented no-op.
    for (int i = 0; i < stale_cancels && i < (int)old_ids.size(); ++i) {
      s.Cancel(old_ids[i]);
    }
    s.RunAll();
    old_ids.assign(ids.begin() + 1, ids.end());  // odd ids: all fired
  }
  double secs = timer.Seconds();
  *fired_total = fired;
  return static_cast<double>(rounds) * per_round / secs;
}

// Pure throughput: schedule a burst, drain, repeat. Verifies FIFO among
// equal times with a running sequence check.
double RawThroughput(int rounds, int per_round, bool* fifo_ok) {
  Scheduler s;
  uint64_t next_expected = 0;
  bool ok = true;
  WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    scallop::util::TimeUs base = s.now();
    for (int i = 0; i < per_round; ++i) {
      uint64_t seq = static_cast<uint64_t>(r) * per_round + i;
      s.At(base + 1 + (i & 7), [&next_expected, &ok, seq, i] {
        // Within one timestamp bucket insertion order is i-order, and
        // buckets fire in time order, so globally seq is only required to
        // be increasing within a bucket; the cheap invariant: a later
        // same-time insert never fires before an earlier one.
        if (seq < next_expected && (seq & 7) == (next_expected & 7)) {
          ok = false;
        }
        next_expected = seq;
        (void)i;
      });
    }
    s.RunAll();
  }
  double secs = timer.Seconds();
  *fifo_ok = ok;
  return static_cast<double>(rounds) * per_round / secs;
}

}  // namespace

int main() {
  using namespace scallop;
  bench::Header("Perf: scheduler event throughput");

  const bool full = bench::FullScale();
  const int rounds = full ? 60 : 20;
  const int per_round = 10'000;
  const int stale_cancels = 256;

  uint64_t fired = 0;
  double cancel_heavy = CancelHeavy(rounds, per_round, stale_cancels, &fired);
  // Half the events are cancelled before firing.
  const uint64_t expected = static_cast<uint64_t>(rounds) * per_round / 2;
  if (fired != expected) {
    std::printf("FAIL: cancel-heavy fired %llu events, expected %llu\n",
                static_cast<unsigned long long>(fired),
                static_cast<unsigned long long>(expected));
    return 1;
  }

  bool fifo_ok = true;
  double raw = RawThroughput(rounds, 50'000, &fifo_ok);
  if (!fifo_ok) {
    std::printf("FAIL: FIFO-among-equal-times violated\n");
    return 1;
  }

  std::printf("cancel-heavy: %.3g events/s   raw: %.3g events/s\n",
              cancel_heavy, raw);

  PerfReport report("scheduler");
  report.AddMetric("events_per_sec", cancel_heavy, "events/s");
  report.AddMetric("raw_events_per_sec", raw, "events/s");
  report.AddParam("rounds", rounds);
  report.AddParam("events_per_round", per_round);
  report.AddParam("stale_cancels_per_round", stale_cancels);
  report.WriteJson();
  return 0;
}
