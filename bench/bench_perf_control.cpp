// Control-plane benchmark -> BENCH_control.json. Two write paths: the
// southbound command microloop (create/program/tear down meetings through
// a zero-latency ControlChannel — the per-switch boundary) and the
// east-west federation plane (a fleet{6,2} scenario with cross-region
// placement and a mid-run controller death; reports controller-to-
// controller messages per wall second). Guards the federation against
// silently regressing into a bottleneck as the fleet grows.
#include <cstdio>

#include "bench_common.hpp"
#include "core/control_channel.hpp"
#include "harness/runner.hpp"
#include "perf_report.hpp"
#include "testbed/fleet_testbed.hpp"

namespace {

using namespace scallop;

// Southbound command throughput: program and tear down `meetings`
// two-party meetings through an inline (zero-latency) channel.
double SouthboundRate(int meetings, uint64_t* commands) {
  sim::Scheduler sched;
  sim::Network net(sched, 7);
  switchsim::Switch sw(sched, net, {.address = net::Ipv4(100, 64, 0, 1)});
  net.Attach(sw.address(), &sw, {}, {});
  core::DataPlaneProgram dp(sw, {});
  core::SwitchAgent agent(sched, dp, {.sfu_ip = sw.address()});
  core::ControlChannel chan(sched, agent, {});

  net::Endpoint a{net::Ipv4(10, 0, 0, 1), 40'000};
  net::Endpoint b{net::Ipv4(10, 0, 0, 2), 41'000};
  scallop::bench::WallTimer timer;
  for (int m = 1; m <= meetings; ++m) {
    core::MeetingId id = m;
    core::ParticipantId p1 = 2 * m, p2 = 2 * m + 1;
    chan.CreateMeeting(id);
    chan.AddParticipant(id, p1, a, 0x1000u + m, 0x2000u + m, true, true);
    chan.AddParticipant(id, p2, b, 0x3000u + m, 0x4000u + m, true, true);
    chan.AddRecvLeg(id, p1, p2, a);
    chan.AddRecvLeg(id, p2, p1, b);
    chan.ForceDecodeTarget(id, p1, p2, 1);
    chan.RemoveMeeting(id);
    sched.RunAll();
  }
  double secs = timer.Seconds();
  *commands = chan.stats().commands_sent;
  return static_cast<double>(chan.stats().commands_sent) / secs;
}

// East-west message throughput of a federated fleet{6,2} under real
// signaling load: cross-region meetings, directory traffic, controller
// heartbeats, and a mid-run controller death + shard adoption.
double EastWestRate(double duration_s, uint64_t* messages, bool* ok) {
  harness::ScenarioSpec spec =
      harness::ScenarioSpec::Uniform("perf-federation", 6, 2, duration_s);
  spec.base.peer.encoder.start_bitrate_bps = 700'000;
  spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
  spec.sample_interval_s = 1.0;
  spec.WithBackend(testbed::BackendChoice::Fleet(6, 2));
  spec.WithControlPlane(/*latency_s=*/0.001);
  spec.WithRebalance(/*interval_s=*/2.0, /*imbalance_threshold=*/2);
  spec.WithControllerFailure(/*at_s=*/duration_s / 2.0, /*region=*/1);
  harness::ScenarioRunner runner(spec);
  scallop::bench::WallTimer timer;
  const harness::ScenarioMetrics& m = runner.Run();
  double wall = timer.Seconds();
  *messages = m.federation.messages_sent;
  if (m.federation.messages_sent == 0 || m.federation.shards_adopted != 1 ||
      m.WorstDeliveryFloor() < 10) {
    std::printf("FAIL: federation carried no east-west traffic or starved\n");
    *ok = false;
  }
  return static_cast<double>(m.federation.messages_sent) / wall;
}

}  // namespace

int main() {
  bench::Header("Perf: southbound commands + east-west federation messages");

  const bool full = bench::FullScale();

  bool ok = true;
  uint64_t commands = 0;
  double southbound = SouthboundRate(full ? 12'000 : 6'000, &commands);
  uint64_t messages = 0;
  double east_west = EastWestRate(full ? 20.0 : 8.0, &messages, &ok);
  if (!ok) return 1;

  std::printf(
      "southbound: %.3g cmd/s (%llu commands)   east-west: %.3g msg/s "
      "(%llu messages)\n",
      southbound, static_cast<unsigned long long>(commands), east_west,
      static_cast<unsigned long long>(messages));

  scallop::bench::PerfReport report("control");
  report.AddMetric("southbound_commands_per_sec", southbound, "commands/s");
  report.AddMetric("east_west_messages_per_sec", east_west, "messages/s");
  report.AddParam("southbound_meetings", full ? 12'000 : 6'000);
  report.AddParam("fleet_switches", 6);
  report.AddParam("fleet_regions", 2);
  report.WriteJson();
  return 0;
}
