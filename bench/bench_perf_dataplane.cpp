// Data-plane packet-path benchmark -> BENCH_dataplane.json. Pumps crafted
// RTP video through a switch running DataPlaneProgram (the full
// Ingress -> replicate -> Egress -> network path) and reports packets/sec
// on the two per-packet shapes that dominate real runs:
//
//   forward_packets_per_sec  two-party forwarding, no SVC entry: classify,
//                            stream lookup, egress rewrite.
//   svc_packets_per_sec      same, plus the SVC layer filter and the
//                            sequence rewriter (3 of 5 L1T3 frames pass
//                            at decode target 1).
//
// Packet bytes are pre-serialized outside the timed region; the timed
// loop pays MakePacket + OnPacket + the scheduler drain, i.e. exactly the
// per-packet cost a testbed run pays per switch hop.
#include <cstdio>
#include <vector>

#include "av1/dependency_descriptor.hpp"
#include "bench_common.hpp"
#include "core/dataplane.hpp"
#include "perf_report.hpp"
#include "rtp/rtp_packet.hpp"
#include "sim/network.hpp"

namespace {

using namespace scallop;

class CountingHost : public sim::Host {
 public:
  void OnPacket(net::PacketPtr) override { ++count; }
  uint64_t count = 0;
};

class Fixture {
 public:
  Fixture()
      : net_(sched_, 5),
        sw_(sched_, net_, {.address = net::Ipv4(100, 64, 0, 1)}),
        dp_(sw_, {}) {
    net_.Attach(sw_.address(), &sw_, {}, {});
    net_.Attach(client_a_.addr, &host_a_, {}, {});
    net_.Attach(client_b_.addr, &host_b_, {}, {});
    sw_.SetCpuHandler([](net::PacketPtr) {});
  }

  void InstallTwoParty(uint32_t ssrc, bool with_svc, int dt) {
    core::StreamEntry stream;
    stream.meeting = 1;
    stream.sender = 1;
    stream.is_video = true;
    stream.design = core::TreeDesign::kTwoParty;
    stream.peer_egress = 2;
    dp_.InstallStream(core::StreamKey{client_a_, ssrc}, stream);

    core::EgressEntry out;
    out.dst = client_b_;
    out.sfu_src = net::Endpoint{sw_.address(), 10'001};
    out.receiver = 2;
    dp_.InstallEgress(core::EgressKey{client_a_, 2}, out);

    if (with_svc) {
      core::SvcEntry svc;
      svc.decode_target = dt;
      svc.cadence = core::SkipCadence::ForDecodeTarget(dt, 1);
      svc.rewriter_index = dp_.AllocateRewriter(svc.cadence);
      svc.filter_in_egress = true;
      dp_.InstallSvc(core::SvcKey{ssrc, 2}, svc);
    }
  }

  // L1T3 pattern, one packet per frame, templates cycling 0,3,2,4,1.
  std::vector<std::vector<uint8_t>> BuildPayloads(uint32_t ssrc, int count) {
    static const uint8_t kTemplates[] = {0, 3, 2, 4, 1};
    std::vector<std::vector<uint8_t>> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
      rtp::RtpPacket pkt;
      pkt.payload_type = 96;
      pkt.sequence_number = static_cast<uint16_t>(i + 1);
      pkt.ssrc = ssrc;
      av1::DependencyDescriptor dd;
      dd.template_id = kTemplates[i % 5];
      dd.frame_number = static_cast<uint16_t>(i + 1);
      pkt.SetExtension(av1::kDdExtensionId, dd.Serialize());
      pkt.payload.assign(1000, 0x42);
      out.push_back(pkt.Serialize());
    }
    return out;
  }

  // Timed inner loop: one switch hop per payload, then one drain.
  void Pump(const std::vector<std::vector<uint8_t>>& payloads) {
    net::Endpoint sfu{sw_.address(), 10'000};
    for (const auto& bytes : payloads) {
      sw_.OnPacket(net::MakePacket(client_a_, sfu, bytes));
    }
    sched_.RunAll();
  }

  sim::Scheduler sched_;
  sim::Network net_;
  switchsim::Switch sw_;
  core::DataPlaneProgram dp_;
  net::Endpoint client_a_{net::Ipv4(10, 0, 0, 1), 40'000};
  net::Endpoint client_b_{net::Ipv4(10, 0, 0, 2), 41'000};
  CountingHost host_a_;
  CountingHost host_b_;
};

// Runs `rounds` rounds of `per_round` packets, a fresh ssrc (and fresh
// rewriter state) per round; returns packets/sec through the switch.
double Measure(bool with_svc, int rounds, int per_round,
               uint64_t* delivered) {
  Fixture fx;
  std::vector<std::vector<std::vector<uint8_t>>> rounds_payloads;
  for (int r = 0; r < rounds; ++r) {
    uint32_t ssrc = 0xA000 + r;
    fx.InstallTwoParty(ssrc, with_svc, /*dt=*/1);
    rounds_payloads.push_back(fx.BuildPayloads(ssrc, per_round));
  }
  scallop::bench::WallTimer timer;
  for (const auto& payloads : rounds_payloads) fx.Pump(payloads);
  double secs = timer.Seconds();
  *delivered = fx.host_b_.count;
  return static_cast<double>(rounds) * per_round / secs;
}

}  // namespace

int main() {
  bench::Header("Perf: data-plane packet path");

  const bool full = bench::FullScale();
  const int rounds = full ? 30 : 10;
  const int per_round = 8'192;

  uint64_t fwd_delivered = 0;
  double fwd = Measure(/*with_svc=*/false, rounds, per_round, &fwd_delivered);
  if (fwd_delivered != static_cast<uint64_t>(rounds) * per_round) {
    std::printf("FAIL: forward leg delivered %llu of %llu packets\n",
                static_cast<unsigned long long>(fwd_delivered),
                static_cast<unsigned long long>(
                    static_cast<uint64_t>(rounds) * per_round));
    return 1;
  }

  uint64_t svc_delivered = 0;
  double svc = Measure(/*with_svc=*/true, rounds, per_round, &svc_delivered);
  // Decode target 1 keeps 3 of every 5 L1T3 frames.
  const uint64_t expected_svc =
      static_cast<uint64_t>(rounds) *
      (static_cast<uint64_t>(per_round) / 5 * 3 + per_round % 5);
  if (svc_delivered < expected_svc - rounds ||
      svc_delivered > expected_svc + rounds) {
    std::printf("FAIL: svc leg delivered %llu packets, expected ~%llu\n",
                static_cast<unsigned long long>(svc_delivered),
                static_cast<unsigned long long>(expected_svc));
    return 1;
  }

  std::printf("forward: %.3g pkts/s   svc+rewrite: %.3g pkts/s\n", fwd, svc);

  scallop::bench::PerfReport report("dataplane");
  report.AddMetric("forward_packets_per_sec", fwd, "packets/s");
  report.AddMetric("svc_packets_per_sec", svc, "packets/s");
  report.AddParam("rounds", rounds);
  report.AddParam("packets_per_round", per_round);
  report.WriteJson();
  return 0;
}
