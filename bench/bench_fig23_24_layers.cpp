// Figures 23 & 24: per-receiver forwarded bytes of a single video stream
// (Fig. 23) and its per-SVC-layer breakdown (Fig. 24), reproducing the
// Zoom-trace observation that the SFU adapts a stream per receiver by
// forwarding only a subset of layer "packet types".
// Script: a three-party meeting; the SFU reduces receiver 2's quality at
// ~t1 and receiver 3's at ~t2 (mirroring the paper's participants 12/17).
#include <cstdio>

#include "bench_common.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace scallop;
  bench::Header("Figures 23+24: per-receiver and per-layer forwarded bytes");

  bool full = bench::FullScale();
  const double kTotal = full ? 250.0 : 120.0;
  const double kDrop1 = kTotal * 0.45;  // paper: ~110 s for receiver 12
  const double kDrop2 = kTotal * 0.80;  // paper: ~200 s for receiver 17

  testbed::TestbedConfig cfg;
  cfg.peer.encoder.start_bitrate_bps = 250'000;  // ramps up like Fig. 23
  cfg.peer.encoder.max_bitrate_bps = 800'000;
  testbed::ScallopTestbed bed(cfg);

  client::Peer& sender = bed.AddPeer();
  client::Peer& r12 = bed.AddPeer();
  client::Peer& r17 = bed.AddPeer();
  auto meeting = bed.CreateMeeting();
  sender.Join(bed.controller(), meeting);
  r12.Join(bed.controller(), meeting);
  r17.Join(bed.controller(), meeting);

  bed.RunFor(kDrop1);
  bed.agent().ForceDecodeTarget(meeting, r12.id(), sender.id(), 1);
  bed.RunFor(kDrop2 - kDrop1);
  bed.agent().ForceDecodeTarget(meeting, r17.id(), sender.id(), 1);
  bed.RunFor(kTotal - kDrop2);

  const auto* rx12 = r12.video_receiver(sender.id());
  const auto* rx17 = r17.video_receiver(sender.id());

  std::printf("Figure 23: received rate of the sender's stream [kbit/s]\n");
  std::printf("%6s %12s %12s\n", "t[s]", "receiver12", "receiver17");
  for (int64_t s = 0; s < static_cast<int64_t>(kTotal); s += 5) {
    std::printf("%6ld %12.0f %12.0f\n", static_cast<long>(s),
                rx12->received_bytes_series().SumInSecond(s) * 8.0 / 1000.0,
                rx17->received_bytes_series().SumInSecond(s) * 8.0 / 1000.0);
  }

  // Fig. 24: per-layer (template id ~ the paper's packet-type bitmask)
  // breakdown at receiver 17 around its adaptation point.
  std::printf("\nFigure 24: receiver 17, bytes/s by template id "
              "(paper's 'packet type')\n");
  std::printf("%6s %8s %8s %8s %8s %8s\n", "t[s]", "tmpl0", "tmpl1", "tmpl2",
              "tmpl3", "tmpl4");
  int64_t from = static_cast<int64_t>(kDrop2) - 20;
  int64_t to = static_cast<int64_t>(kTotal);
  for (int64_t s = std::max<int64_t>(0, from); s < to; s += 5) {
    std::printf("%6ld", static_cast<long>(s));
    for (uint8_t t = 0; t < 5; ++t) {
      std::printf(" %8.0f", rx17->template_bytes_series(t).SumInSecond(s));
    }
    std::printf("\n");
  }
  bench::Note("\nPaper shape: after each receiver's adaptation point its "
              "received rate steps down; the reduction comes from dropping "
              "the TL2 packet types (templates 3/4) while TL0/TL1 continue.");
  return 0;
}
