// Shared helpers for the evaluation harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace scallop::bench {

// Paper-scale runs are opt-in: the defaults are scaled to finish within
// seconds while preserving the experiment's shape.
inline bool FullScale() {
  const char* env = std::getenv("SCALLOP_FULL");
  return env != nullptr && env[0] == '1';
}

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace scallop::bench
