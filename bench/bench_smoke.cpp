// CI smoke: a 2-sim-second three-party scenario run on every conference
// backend behind the testbed::Backend seam — the single-switch Scallop
// stack, a 2-switch fleet, and the software-SFU baseline — plus a short
// fleet{3} scenario with skewed join load and the background rebalancer
// on (must show at least one live meeting migration without any
// failover), and a fleet{3} cascade leg where the placement policy splits
// one meeting across switches (fails if no relay span is installed, no
// media crosses the inter-switch relay, or any peer starves), a fleet{4}
// redundant-tree leg — ring backbone, standby chain per relay, a primary
// link cut at t=3s (fails on any frame gap, zero duplicates eliminated,
// or capacity overshoot from double registration) — and a
// federated fleet{6,2} leg — cross-region border span plus mid-run
// controller death and shard adoption (fails on starvation, zero
// east-west traffic, or a meeting left with the dead controller). Exists
// so
// the bench pipeline (ScenarioRunner + bench_common), the backend seam
// and the control plane stay exercised on every push without paying for a
// paper-scale run; exits nonzero if any substrate fails to deliver media
// at all. (The scallop and fleet{2} runs' CSVs are additionally pinned
// byte-for-byte by tests/test_harness.cpp.) Set SCALLOP_CSV_DIR to dump
// every leg's CSV there — CI uploads them as artifacts. The fleet legs
// additionally run with structured tracing on (obs::TraceLog) and dump a
// Perfetto-loadable <name>.trace.json beside each CSV; a malformed export
// fails the smoke run.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "obs/stats_registry.hpp"
#include "obs/trace.hpp"
#include "testbed/fleet_testbed.hpp"

namespace {

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

// Writes the run's CSV to $SCALLOP_CSV_DIR/<name>.csv when set.
void DumpCsv(const std::string& name,
             const scallop::harness::ScenarioMetrics& m) {
  const char* dir = std::getenv("SCALLOP_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  WriteFile(std::string(dir) + "/" + name + ".csv", m.ToCsv());
}

// Validates the run's Chrome trace export and writes it next to the CSV
// ($SCALLOP_CSV_DIR/<name>.trace.json — CI uploads both as artifacts).
// Returns false when the export is malformed, which fails the smoke run:
// a Perfetto-unloadable trace is a broken deliverable even when every
// media counter looks healthy.
bool DumpTrace(const std::string& name,
               const scallop::harness::ScenarioRunner& runner,
               const scallop::harness::ScenarioMetrics& m) {
  if (runner.trace() == nullptr) return true;
  scallop::obs::StatsRegistry registry;
  m.RegisterInto(registry);
  const std::string json = runner.trace()->ToChromeJson(&registry);
  std::string error;
  if (!scallop::obs::TraceLog::ValidateChromeTrace(json, &error)) {
    std::printf("SMOKE FAILED: %s trace export malformed: %s\n", name.c_str(),
                error.c_str());
    return false;
  }
  const char* dir = std::getenv("SCALLOP_CSV_DIR");
  if (dir != nullptr && *dir != '\0') {
    WriteFile(std::string(dir) + "/" + name + ".trace.json", json);
  }
  return true;
}

}  // namespace

int main() {
  using namespace scallop;
  bench::Header("Bench smoke: 3-party call, 2 simulated seconds, x3 backends");

  const testbed::BackendChoice backends[] = {
      testbed::BackendChoice::Scallop(),
      testbed::BackendChoice::Fleet(2),
      testbed::BackendChoice::Software(),
  };

  bool ok = true;
  for (const auto& choice : backends) {
    harness::ScenarioSpec spec =
        harness::ScenarioSpec::Uniform("bench-smoke", 1, 3, 2.0);
    spec.base.peer.encoder.start_bitrate_bps = 700'000;
    spec.sample_interval_s = 0.5;
    spec.backend = choice;
    harness::ScenarioRunner runner(spec);
    const harness::ScenarioMetrics& m = runner.Run();
    std::printf("[%s]\n%s", choice.Label().c_str(), m.Summary().c_str());
    DumpCsv("smoke-" + choice.Label(), m);

    if (m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0 ||
        m.switch_packets_in == 0) {
      std::printf("SMOKE FAILED on backend %s\n", choice.Label().c_str());
      ok = false;
    }
  }

  // Live rebalancing under skewed join load, no failover: six meetings on
  // a 3-switch fleet, two of them (both landing on switch 0 round-robin)
  // carrying 3 participants each — the load rebalancer must move at least
  // one meeting, its peers must re-signal, and no switch may fail.
  {
    harness::ScenarioSpec spec =
        harness::ScenarioSpec::Uniform("smoke-rebalance", 6, 1, 8.0);
    spec.base.peer.encoder.start_bitrate_bps = 700'000;
    spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
    spec.meetings[0].participants.resize(3);
    spec.meetings[3].participants.resize(3);
    spec.WithBackend(testbed::BackendChoice::Fleet(3));
    spec.WithRebalance(/*interval_s=*/2.0, /*imbalance_threshold=*/2);
    spec.WithTrace();
    harness::ScenarioRunner runner(spec);
    const harness::ScenarioMetrics& m = runner.Run();
    std::printf("[fleet{3}+rebalance]\n%s", m.Summary().c_str());
    DumpCsv("smoke-rebalance", m);
    ok = DumpTrace("smoke-rebalance", runner, m) && ok;
    if (m.placements_rebalanced == 0 || m.control.switches_failed != 0 ||
        m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0) {
      std::printf("SMOKE FAILED on the rebalance scenario\n");
      ok = false;
    }
  }

  // Cascaded placement (paper Appendix A): one 5-party meeting on a
  // 3-switch fleet under Cascade(2) — the plan must span (home + 2 relay
  // spans), media must actually cross the inter-switch relays, and every
  // peer must deliver with gap-free rewriting.
  {
    harness::ScenarioSpec spec =
        harness::ScenarioSpec::Uniform("smoke-cascade", 1, 5, 4.0);
    spec.base.peer.encoder.start_bitrate_bps = 700'000;
    spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
    spec.sample_interval_s = 0.5;
    spec.WithBackend(testbed::BackendChoice::Fleet(3));
    spec.WithPlacementPolicy(core::PlacementPolicyConfig::Cascade(2));
    spec.WithTrace();
    harness::ScenarioRunner runner(spec);
    const harness::ScenarioMetrics& m = runner.Run();
    std::printf("[fleet{3}+cascade]\n%s", m.Summary().c_str());
    DumpCsv("smoke-cascade", m);
    ok = DumpTrace("smoke-cascade", runner, m) && ok;
    if (m.cascade.spans_installed == 0 || m.cascade.relay_packets == 0 ||
        m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0) {
      std::printf("SMOKE FAILED on the cascade scenario\n");
      ok = false;
    }
  }

  // Constrained backbone (ISSUE 5): a fleet{4} meeting over a linear
  // A—B—C—D backbone (2 ms / 12 Mb/s per link) under the topology-aware
  // planner must come out as a depth-3 relay tree that respects every
  // link's capacity, starve nobody — and spend strictly less backbone
  // bandwidth than the hub-and-spoke plan for the same scenario.
  {
    auto backbone_spec = [](const char* name,
                            core::PlacementPolicyConfig policy) {
      harness::ScenarioSpec spec =
          harness::ScenarioSpec::Uniform(name, 1, 4, 4.0);
      spec.base.peer.encoder.start_bitrate_bps = 700'000;
      spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
      spec.sample_interval_s = 0.5;
      spec.WithBackend(testbed::BackendChoice::Fleet(4));
      spec.WithPlacementPolicy(policy);
      spec.WithInterSwitchLink(0, 1, 0.002, 12e6)
          .WithInterSwitchLink(1, 2, 0.002, 12e6)
          .WithInterSwitchLink(2, 3, 0.002, 12e6);
      spec.WithTrace();
      return spec;
    };
    auto backbone_bytes = [](const harness::ScenarioMetrics& m) {
      uint64_t total = 0;
      for (const auto& l : m.topology.links) total += l.relay_bytes;
      return total;
    };

    harness::ScenarioRunner tree_runner(backbone_spec(
        "smoke-backbone-tree", core::PlacementPolicyConfig::TopologyAware(1)));
    const harness::ScenarioMetrics& tree = tree_runner.Run();
    std::printf("[fleet{4}+backbone tree]\n%s", tree.Summary().c_str());
    DumpCsv("smoke-backbone-tree", tree);
    ok = DumpTrace("smoke-backbone-tree", tree_runner, tree) && ok;

    harness::ScenarioRunner hub_runner(backbone_spec(
        "smoke-backbone-hub", core::PlacementPolicyConfig::Cascade(1)));
    const harness::ScenarioMetrics& hub = hub_runner.Run();
    std::printf("[fleet{4}+backbone hub]\n%s", hub.Summary().c_str());
    DumpCsv("smoke-backbone-hub", hub);
    ok = DumpTrace("smoke-backbone-hub", hub_runner, hub) && ok;

    bool capacity_ok = true;
    for (const auto& l : tree.topology.links) {
      if (l.capacity_bps > 0.0 && l.load_bps > l.capacity_bps) {
        std::printf("planner overloaded link %zu-%zu (%.0f > %.0f bps)\n",
                    l.a, l.b, l.load_bps, l.capacity_bps);
        capacity_ok = false;
      }
    }
    if (!capacity_ok || tree.topology.max_depth != 3 ||
        tree.WorstDeliveryFloor() < 10 || tree.RewriteViolations() != 0 ||
        backbone_bytes(tree) == 0 ||
        backbone_bytes(tree) >= backbone_bytes(hub)) {
      std::printf("SMOKE FAILED on the constrained-backbone scenario "
                  "(tree=%llu hub=%llu backbone bytes)\n",
                  static_cast<unsigned long long>(backbone_bytes(tree)),
                  static_cast<unsigned long long>(backbone_bytes(hub)));
      ok = false;
    }
  }

  // Redundant dual relay trees (ISSUE 9): a fleet{4} meeting spread over
  // a ring backbone with a standby chain per relay; at t=3s a link the
  // primary tree rides is cut. Fails on any frame gap at any receiver
  // (worst delivery floor vs an undisturbed control run), zero
  // duplicates eliminated (the second tree never flowed or the merge
  // never deduped), or link-capacity overshoot from double-registering
  // both trees' load.
  {
    auto ring_spec = [](const char* name) {
      harness::ScenarioSpec spec =
          harness::ScenarioSpec::Uniform(name, 1, 4, 6.0);
      spec.base.peer.encoder.start_bitrate_bps = 700'000;
      spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
      spec.sample_interval_s = 0.5;
      spec.WithBackend(testbed::BackendChoice::Fleet(4));
      spec.WithPlacementPolicy(core::PlacementPolicyConfig::TopologyAware(1));
      spec.WithInterSwitchLink(0, 1, 0.001, 12e6)
          .WithInterSwitchLink(1, 2, 0.001, 12e6)
          .WithInterSwitchLink(2, 3, 0.001, 12e6)
          .WithInterSwitchLink(3, 0, 0.001, 12e6);
      spec.WithRedundantTrees();
      spec.WithTrace();
      return spec;
    };

    harness::ScenarioRunner control(ring_spec("smoke-redundant-control"));
    const harness::ScenarioMetrics& undisturbed = control.Run();

    harness::ScenarioRunner runner(ring_spec("smoke-redundant-cut"));
    runner.RunUntil(2.9);
    const auto relays =
        runner.fleet().fleet().RelaysOf(runner.meeting_id(0));
    if (relays.empty() || relays.front().backbone_path.size() < 2) {
      std::printf("SMOKE FAILED: redundant leg planned no relays\n");
      ok = false;
    } else {
      const size_t cut_a = relays.front().backbone_path[0];
      const size_t cut_b = relays.front().backbone_path[1];
      runner.backend().sched().At(util::Seconds(3.0), [&] {
        // A sliver of capacity, not 0: <= 0 means unconstrained, and the
        // overload re-planner only reacts to finite capacities.
        runner.fleet().SetInterSwitchLinkCapacity(cut_a, cut_b, 1.0);
      });
      const harness::ScenarioMetrics& m = runner.Run();
      std::printf("[fleet{4}+redundant trees, link %zu-%zu cut @3s]\n%s",
                  cut_a, cut_b, m.Summary().c_str());
      DumpCsv("smoke-redundant-cut", m);
      ok = DumpTrace("smoke-redundant-cut", runner, m) && ok;

      bool capacity_ok = true;
      for (const auto& l : undisturbed.topology.links) {
        if (l.capacity_bps > 0.0 && l.load_bps > l.capacity_bps) {
          std::printf(
              "redundant planner overloaded link %zu-%zu (%.0f > %.0f "
              "bps)\n",
              l.a, l.b, l.load_bps, l.capacity_bps);
          capacity_ok = false;
        }
      }
      if (!capacity_ok || m.redundancy.tree_flips == 0 ||
          m.redundancy.duplicates_eliminated == 0 ||
          m.RewriteViolations() != 0 ||
          m.WorstDeliveryFloor() + 3 < undisturbed.WorstDeliveryFloor()) {
        std::printf("SMOKE FAILED on the redundant-tree scenario "
                    "(floor=%llu vs undisturbed %llu, flips=%llu, "
                    "dups_eliminated=%llu)\n",
                    static_cast<unsigned long long>(m.WorstDeliveryFloor()),
                    static_cast<unsigned long long>(
                        undisturbed.WorstDeliveryFloor()),
                    static_cast<unsigned long long>(m.redundancy.tree_flips),
                    static_cast<unsigned long long>(
                        m.redundancy.duplicates_eliminated));
        ok = false;
      }
    }
  }

  // Federated control plane (fleet{6,2}): two region controllers peered
  // east-west, a cross-region meeting under Cascade(1) (one region owns 3
  // switches, so a 5-party meeting must borrow a border span from the
  // other), and a mid-run controller death whose shard the surviving
  // region adopts. Fails on starvation, zero east-west traffic, a missing
  // border span, or any meeting left owned by the dead controller.
  {
    harness::ScenarioSpec spec =
        harness::ScenarioSpec::Uniform("smoke-federation", 4, 1, 8.0);
    spec.base.peer.encoder.start_bitrate_bps = 700'000;
    spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
    spec.sample_interval_s = 0.5;
    spec.meetings[0].participants.resize(5);
    spec.WithBackend(testbed::BackendChoice::Fleet(6, 2));
    spec.WithControlPlane(/*latency_s=*/0.001);
    spec.WithPlacementPolicy(core::PlacementPolicyConfig::Cascade(1));
    spec.WithRebalance(/*interval_s=*/2.0, /*imbalance_threshold=*/2);
    spec.WithControllerFailure(/*at_s=*/4.0, /*region=*/1);
    spec.WithTrace();
    harness::ScenarioRunner runner(spec);
    const harness::ScenarioMetrics& m = runner.Run();
    std::printf("[fleet{6,2}+federation]\n%s", m.Summary().c_str());
    DumpCsv("smoke-federation", m);
    ok = DumpTrace("smoke-federation", runner, m) && ok;

    bool owned_live = true;
    auto& fed = runner.fleet().federation();
    for (size_t mi = 0; mi < 4; ++mi) {
      const size_t owner =
          fed.OwnerRegionOf(runner.meeting_id(static_cast<int>(mi)));
      if (owner == SIZE_MAX || !fed.RegionAlive(owner)) owned_live = false;
    }
    if (m.federation.messages_sent == 0 || m.federation.border_spans == 0 ||
        m.federation.shards_adopted != 1 || !owned_live ||
        m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0) {
      std::printf("SMOKE FAILED on the federation scenario\n");
      ok = false;
    }
  }

  // Diurnal workload (ISSUE 8): one compressed campus day on fleet{6,2} —
  // trace-driven join schedule, follow-the-sun meeting pins, two roaming
  // anchors crossing regions mid-run. Fails on starvation or if no roamer
  // actually re-homed onto its new region.
  {
    harness::WorkloadSpec w;
    w.name = "smoke-diurnal";
    w.duration_s = 6.0;
    w.sample_interval_s = 0.5;
    w.WithBackend(testbed::BackendChoice::Fleet(6, 2))
        .WithGrid(3, 3)
        .WithDiurnal(/*day_start_h=*/6.0, /*day_hours=*/12.0,
                     /*latest_join_frac=*/0.4)
        .WithFollowTheSun()
        .WithRoaming(/*roamers=*/2, /*at_frac=*/0.6)
        .WithControlPlane(/*latency_s=*/0.001);
    harness::ScenarioSpec spec = w.Compile();
    spec.base.peer.encoder.start_bitrate_bps = 700'000;
    spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
    spec.WithTrace();
    harness::ScenarioRunner runner(spec);
    const harness::ScenarioMetrics& m = runner.Run();
    std::printf("[fleet{6,2}+diurnal workload]\n%s", m.Summary().c_str());
    DumpCsv("smoke-diurnal", m);
    ok = DumpTrace("smoke-diurnal", runner, m) && ok;
    if (m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0 ||
        m.roam_rehomings == 0) {
      std::printf("SMOKE FAILED on the diurnal workload scenario\n");
      ok = false;
    }
  }

  if (!ok) return 1;
  std::printf("SMOKE OK\n");
  return 0;
}
