// CI smoke: a 2-sim-second three-party scenario run on every conference
// backend behind the testbed::Backend seam — the single-switch Scallop
// stack, a 2-switch fleet, and the software-SFU baseline. Exists so the
// bench pipeline (ScenarioRunner + bench_common) and the backend seam stay
// exercised on every push without paying for a paper-scale run; exits
// nonzero if any substrate fails to deliver media at all. (The scallop
// run's CSV is additionally pinned byte-for-byte against the pre-redesign
// harness by tests/test_harness.cpp.)
#include <cstdio>

#include "bench_common.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace scallop;
  bench::Header("Bench smoke: 3-party call, 2 simulated seconds, x3 backends");

  const testbed::BackendChoice backends[] = {
      testbed::BackendChoice::Scallop(),
      testbed::BackendChoice::Fleet(2),
      testbed::BackendChoice::Software(),
  };

  bool ok = true;
  for (const auto& choice : backends) {
    harness::ScenarioSpec spec =
        harness::ScenarioSpec::Uniform("bench-smoke", 1, 3, 2.0);
    spec.base.peer.encoder.start_bitrate_bps = 700'000;
    spec.sample_interval_s = 0.5;
    spec.backend = choice;
    harness::ScenarioRunner runner(spec);
    const harness::ScenarioMetrics& m = runner.Run();
    std::printf("[%s]\n%s", choice.Label().c_str(), m.Summary().c_str());

    if (m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0 ||
        m.switch_packets_in == 0) {
      std::printf("SMOKE FAILED on backend %s\n", choice.Label().c_str());
      ok = false;
    }
  }

  if (!ok) return 1;
  std::printf("SMOKE OK\n");
  return 0;
}
