// CI smoke: a 2-sim-second three-party scenario through the full Scallop
// stack. Exists so the bench pipeline (ScenarioRunner + bench_common)
// stays exercised on every push without paying for a paper-scale run;
// exits nonzero if the stack fails to deliver media at all.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace scallop;
  bench::Header("Bench smoke: 3-party call, 2 simulated seconds");

  harness::ScenarioSpec spec =
      harness::ScenarioSpec::Uniform("bench-smoke", 1, 3, 2.0);
  spec.base.peer.encoder.start_bitrate_bps = 700'000;
  spec.sample_interval_s = 0.5;
  harness::ScenarioRunner runner(spec);
  const harness::ScenarioMetrics& m = runner.Run();
  std::printf("%s", m.Summary().c_str());

  if (m.WorstDeliveryFloor() < 10 || m.RewriteViolations() != 0 ||
      m.switch_packets_in == 0) {
    std::printf("SMOKE FAILED\n");
    return 1;
  }
  std::printf("SMOKE OK\n");
  return 0;
}
