// Figures 20, 21 and 22: campus concurrency over two weeks and the bytes a
// software SFU would process vs Scallop's switch agent.
// Paper shape: diurnal weekday peaks (~300 meetings, ~500 participants);
// software SFU peaks ~1250 Mb/s, switch agent peaks ~4.4 Mb/s.
// The analytic curves are complemented by a simulated campus snapshot: a
// ScenarioSpec whose meeting-size mix is drawn from the campus model and
// executed through the real switch stack by the ScenarioRunner, measuring
// the same control/data-plane byte split from live packets.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "trace/campus.hpp"

namespace {

// Builds a scaled snapshot of the campus load: meeting sizes drawn from
// the model's distribution, diurnal churn compressed into a short run.
scallop::harness::ScenarioSpec CampusSnapshot(
    const scallop::trace::CampusModel& model, int max_meetings,
    int max_peers, double duration_s) {
  using scallop::harness::ScenarioSpec;
  ScenarioSpec spec;
  spec.name = "campus-snapshot";
  spec.duration_s = duration_s;
  spec.sample_interval_s = duration_s;  // one closing sample
  spec.base.peer.encoder.start_bitrate_bps = 500'000;

  int peers = 0;
  for (const auto& rec : model.meetings()) {
    if (static_cast<int>(spec.meetings.size()) >= max_meetings) break;
    int size = std::max(2, rec.participants);
    if (peers + size > max_peers) continue;
    scallop::harness::MeetingSpec meeting;
    meeting.participants.resize(static_cast<size_t>(size));
    // Compressed diurnal churn: staggered arrivals, and in larger
    // meetings the last participant leaves mid-run and returns.
    for (size_t p = 0; p < meeting.participants.size(); ++p) {
      meeting.participants[p].join_at_s = 0.5 * static_cast<double>(p);
    }
    if (size > 2) {
      meeting.participants.back().leave_at_s = duration_s * 0.5;
      meeting.participants.back().rejoin_at_s = duration_s * 0.7;
    }
    peers += size;
    spec.meetings.push_back(std::move(meeting));
  }
  return spec;
}

}  // namespace

int main() {
  using namespace scallop;
  trace::CampusModel model;

  bench::Header("Figures 20+21: concurrent meetings / participants (6 h bins)");
  auto meetings = model.ConcurrentMeetings(6.0);
  auto participants = model.ConcurrentParticipants(6.0);
  std::printf("%8s %10s %14s\n", "day", "meetings", "participants");
  for (size_t i = 0; i < meetings.size(); ++i) {
    std::printf("%8.2f %10d %14d\n", meetings[i].first / 24.0,
                meetings[i].second, participants[i].second);
  }
  int peak_m = 0, peak_p = 0;
  for (auto& [t, v] : model.ConcurrentMeetings(0.25)) peak_m = std::max(peak_m, v);
  for (auto& [t, v] : model.ConcurrentParticipants(0.25)) peak_p = std::max(peak_p, v);
  std::printf("\nPeaks: %d concurrent meetings (paper ~300), %d concurrent "
              "participants (paper ~500)\n",
              peak_m, peak_p);

  bench::Header("Figure 22: bytes processed, software SFU vs switch agent");
  std::printf("%8s %16s %16s\n", "day", "software [Mb/s]", "agent [Mb/s]");
  double peak_sw = 0, peak_agent = 0;
  for (const auto& p : model.ByteRates(0.25)) {
    peak_sw = std::max(peak_sw, p.software_bps / 1e6);
    peak_agent = std::max(peak_agent, p.agent_bps / 1e6);
  }
  for (const auto& p : model.ByteRates(6.0)) {
    if (p.hour > 7 * 24) break;  // one week, as in the paper's figure
    std::printf("%8.2f %16.1f %16.3f\n", p.hour / 24.0, p.software_bps / 1e6,
                p.agent_bps / 1e6);
  }
  std::printf("\nPeaks: software %.0f Mb/s (paper ~1250), agent %.1f Mb/s "
              "(paper ~4.4)\n",
              peak_sw, peak_agent);
  std::printf("A 40 Gb/s server would spend %.1f%% of its capacity on the "
              "software SFU at peak vs %.3f%% with Scallop (paper: 3.1%% vs "
              "0.01%%)\n",
              100.0 * peak_sw / 40'000.0, 100.0 * peak_agent / 40'000.0);

  bench::Header("Fig. 22 cross-check: simulated campus snapshot (live stack)");
  bool full = bench::FullScale();
  trace::CampusConfig snap_cfg;
  snap_cfg.total_meetings = full ? 60 : 12;
  snap_cfg.max_participants = full ? 12 : 6;
  trace::CampusModel snapshot_model(snap_cfg);
  harness::ScenarioSpec spec =
      CampusSnapshot(snapshot_model, full ? 40 : 10, full ? 120 : 30,
                     full ? 60.0 : 20.0);
  std::printf("Driving %zu meetings / %d participants through one switch "
              "for %.0f s...\n",
              spec.meetings.size(), spec.TotalParticipants(), spec.duration_s);
  harness::ScenarioRunner runner(spec);
  const harness::ScenarioMetrics& m = runner.Run();
  std::printf("%s", m.Summary().c_str());
  double cpu_share = m.switch_packets_in == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(m.agent_cpu_packets) /
                               static_cast<double>(m.switch_packets_in);
  std::printf("Agent CPU saw %lu of %lu switch packets (%.2f%%): the "
              "control plane stays tiny while the data plane replicates "
              "%lu packets.\n",
              static_cast<unsigned long>(m.agent_cpu_packets),
              static_cast<unsigned long>(m.switch_packets_in), cpu_share,
              static_cast<unsigned long>(m.switch_replicas));
  return 0;
}
