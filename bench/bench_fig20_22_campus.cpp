// Figures 20, 21 and 22: campus concurrency over two weeks and the bytes a
// software SFU would process vs Scallop's switch agent.
// Paper shape: diurnal weekday peaks (~300 meetings, ~500 participants);
// software SFU peaks ~1250 Mb/s, switch agent peaks ~4.4 Mb/s.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "trace/campus.hpp"

int main() {
  using namespace scallop;
  trace::CampusModel model;

  bench::Header("Figures 20+21: concurrent meetings / participants (6 h bins)");
  auto meetings = model.ConcurrentMeetings(6.0);
  auto participants = model.ConcurrentParticipants(6.0);
  std::printf("%8s %10s %14s\n", "day", "meetings", "participants");
  for (size_t i = 0; i < meetings.size(); ++i) {
    std::printf("%8.2f %10d %14d\n", meetings[i].first / 24.0,
                meetings[i].second, participants[i].second);
  }
  int peak_m = 0, peak_p = 0;
  for (auto& [t, v] : model.ConcurrentMeetings(0.25)) peak_m = std::max(peak_m, v);
  for (auto& [t, v] : model.ConcurrentParticipants(0.25)) peak_p = std::max(peak_p, v);
  std::printf("\nPeaks: %d concurrent meetings (paper ~300), %d concurrent "
              "participants (paper ~500)\n",
              peak_m, peak_p);

  bench::Header("Figure 22: bytes processed, software SFU vs switch agent");
  std::printf("%8s %16s %16s\n", "day", "software [Mb/s]", "agent [Mb/s]");
  double peak_sw = 0, peak_agent = 0;
  for (const auto& p : model.ByteRates(0.25)) {
    peak_sw = std::max(peak_sw, p.software_bps / 1e6);
    peak_agent = std::max(peak_agent, p.agent_bps / 1e6);
  }
  for (const auto& p : model.ByteRates(6.0)) {
    if (p.hour > 7 * 24) break;  // one week, as in the paper's figure
    std::printf("%8.2f %16.1f %16.3f\n", p.hour / 24.0, p.software_bps / 1e6,
                p.agent_bps / 1e6);
  }
  std::printf("\nPeaks: software %.0f Mb/s (paper ~1250), agent %.1f Mb/s "
              "(paper ~4.4)\n",
              peak_sw, peak_agent);
  std::printf("A 40 Gb/s server would spend %.1f%% of its capacity on the "
              "software SFU at peak vs %.3f%% with Scallop (paper: 3.1%% vs "
              "0.01%%)\n",
              100.0 * peak_sw / 40'000.0, 100.0 * peak_agent / 40'000.0);
  return 0;
}
