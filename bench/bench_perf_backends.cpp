// End-to-end backend benchmark -> BENCH_backends.json. Runs the same
// 8-meeting x 5-peer, 10-sim-second scenario on all three conference
// backends and reports simulated seconds per wall second for each — the
// repo's headline "how fast does the whole simulator go" number — plus a
// southbound command microloop (create/program/tear down meetings through
// a zero-latency ControlChannel) for the control-plane write path.
#include <cstdio>

#include "bench_common.hpp"
#include "core/control_channel.hpp"
#include "harness/runner.hpp"
#include "perf_report.hpp"

namespace {

using namespace scallop;

// Simulated seconds per wall second for one backend.
double BackendRate(const testbed::BackendChoice& choice, int meetings,
                   int peers, double duration_s, bool* ok) {
  harness::ScenarioSpec spec = harness::ScenarioSpec::Uniform(
      "perf-backends", meetings, peers, duration_s);
  spec.base.peer.encoder.start_bitrate_bps = 700'000;
  spec.base.peer.encoder.key_frame_interval = util::Seconds(4);
  spec.sample_interval_s = 1.0;
  spec.backend = choice;
  harness::ScenarioRunner runner(spec);
  scallop::bench::WallTimer timer;
  const harness::ScenarioMetrics& m = runner.Run();
  double wall = timer.Seconds();
  if (m.switch_packets_in == 0 || m.WorstDeliveryFloor() < 10) {
    std::printf("FAIL: backend %s delivered no media\n",
                choice.Label().c_str());
    *ok = false;
  }
  return duration_s / wall;
}

// Southbound command throughput: program and tear down `meetings`
// two-party meetings through an inline (zero-latency) channel.
double SouthboundRate(int meetings, uint64_t* commands) {
  sim::Scheduler sched;
  sim::Network net(sched, 7);
  switchsim::Switch sw(sched, net, {.address = net::Ipv4(100, 64, 0, 1)});
  net.Attach(sw.address(), &sw, {}, {});
  core::DataPlaneProgram dp(sw, {});
  core::SwitchAgent agent(sched, dp, {.sfu_ip = sw.address()});
  core::ControlChannel chan(sched, agent, {});

  net::Endpoint a{net::Ipv4(10, 0, 0, 1), 40'000};
  net::Endpoint b{net::Ipv4(10, 0, 0, 2), 41'000};
  scallop::bench::WallTimer timer;
  for (int m = 1; m <= meetings; ++m) {
    core::MeetingId id = m;
    core::ParticipantId p1 = 2 * m, p2 = 2 * m + 1;
    chan.CreateMeeting(id);
    chan.AddParticipant(id, p1, a, 0x1000u + m, 0x2000u + m, true, true);
    chan.AddParticipant(id, p2, b, 0x3000u + m, 0x4000u + m, true, true);
    chan.AddRecvLeg(id, p1, p2, a);
    chan.AddRecvLeg(id, p2, p1, b);
    chan.ForceDecodeTarget(id, p1, p2, 1);
    chan.RemoveMeeting(id);
    sched.RunAll();
  }
  double secs = timer.Seconds();
  *commands = chan.stats().commands_sent;
  return static_cast<double>(chan.stats().commands_sent) / secs;
}

}  // namespace

int main() {
  bench::Header("Perf: backend sim-s/wall-s + southbound commands");

  const bool full = bench::FullScale();
  const int meetings = 8;
  const int peers = 5;
  const double duration_s = full ? 30.0 : 10.0;

  bool ok = true;
  double scallop_rate =
      BackendRate(testbed::BackendChoice::Scallop(), meetings, peers,
                  duration_s, &ok);
  double fleet_rate = BackendRate(testbed::BackendChoice::Fleet(4), meetings,
                                  peers, duration_s, &ok);
  double software_rate =
      BackendRate(testbed::BackendChoice::Software(), meetings, peers,
                  duration_s, &ok);
  if (!ok) return 1;

  uint64_t commands = 0;
  double southbound = SouthboundRate(full ? 12'000 : 6'000, &commands);

  std::printf(
      "scallop: %.3g sim-s/wall-s   fleet{4}: %.3g   software: %.3g   "
      "southbound: %.3g cmd/s (%llu commands)\n",
      scallop_rate, fleet_rate, software_rate, southbound,
      static_cast<unsigned long long>(commands));

  scallop::bench::PerfReport report("backends");
  report.AddMetric("sim_s_per_wall_s_scallop", scallop_rate, "sim-s/wall-s");
  report.AddMetric("sim_s_per_wall_s_fleet", fleet_rate, "sim-s/wall-s");
  report.AddMetric("sim_s_per_wall_s_software", software_rate,
                   "sim-s/wall-s");
  report.AddMetric("southbound_commands_per_sec", southbound, "commands/s");
  report.AddParam("meetings", meetings);
  report.AddParam("peers_per_meeting", peers);
  report.AddParam("duration_s", duration_s);
  report.AddParam("fleet_switches", 4);
  report.WriteJson();
  return 0;
}
