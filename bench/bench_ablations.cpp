// Ablations of Scallop's design choices (DESIGN.md §7):
//
//  A. The never-duplicate rule (paper §6.2): a naive rewriter that rewrites
//     late packets with the current offset occasionally emits duplicate
//     output sequence numbers; the receiver's decoder state breaks and the
//     video freezes until a key frame. S-LR leaves gaps instead: only
//     retransmissions are triggered.
//  B. Receiver-driven REMB vs sender-driven TWCC (paper §5.2): TWCC sends
//     one feedback packet per 10-20 media packets, which would multiply
//     the switch agent's event rate.
#include <cstdio>
#include <set>

#include "av1/dependency_descriptor.hpp"
#include "bench_common.hpp"
#include "core/seqrewrite.hpp"
#include "media/receiver.hpp"
#include "rtp/rtp_packet.hpp"
#include "testbed/testbed.hpp"
#include "util/random.hpp"

namespace {

using namespace scallop;

// Deliberately broken rewriter: like S-LM, but *always* rewrites late
// packets with the current offset — the unsafe behaviour both heuristics
// avoid.
class NaiveRewriter : public core::SequenceRewriter {
 public:
  explicit NaiveRewriter(const core::SkipCadence& cadence)
      : cadence_(cadence) {}

  core::RewriteResult Process(const core::RewritePacketView& pkt) override {
    int64_t seq = unwrap_.Unwrap(pkt.seq);
    if (pkt.suppress) {
      if (seq > highest_) {
        if (seq - highest_ > 1 &&
            cadence_.AllSkippedBetween(highest_frame_, pkt.frame)) {
          offset_ += seq - highest_ - 1;
        }
        offset_ += 1;
        highest_ = seq;
        highest_frame_ = pkt.frame;
      }
      return {false, 0};
    }
    if (seq > highest_) {
      if (seq - highest_ > 1 &&
          cadence_.AllSkippedBetween(highest_frame_, pkt.frame)) {
        offset_ += seq - highest_ - 1;
      }
      highest_ = seq;
      highest_frame_ = pkt.frame;
    }
    // The bug: late packets rewritten with the *current* offset.
    return {true, static_cast<uint16_t>(seq - offset_)};
  }
  void SetCadence(const core::SkipCadence& c) override { cadence_ = c; }
  int64_t current_offset() const override { return offset_; }
  size_t state_bits() const override { return 64; }
  std::string name() const override { return "naive"; }

 private:
  core::SkipCadence cadence_;
  util::SeqUnwrapper unwrap_;
  int64_t highest_ = -1;
  uint16_t highest_frame_ = 0;
  int64_t offset_ = 0;
};

// Runs an adapted (DT1) stream with reordering through a rewriter into the
// real receiver model; reports decoder breaks and freeze time.
struct ReceiverOutcome {
  uint64_t decoder_breaks;
  double freeze_ms;
  uint64_t nacked;
  uint64_t frames_decoded;
};

ReceiverOutcome RunThroughReceiver(core::SequenceRewriter& rw,
                                   uint64_t seed) {
  media::SvcEncoderConfig ecfg;
  ecfg.size_jitter = 0.1;
  ecfg.key_frame_interval = util::Seconds(5);
  media::SvcEncoder encoder(ecfg, seed);
  media::Packetizer packetizer(media::PacketizerConfig{.ssrc = 9});
  media::VideoReceiverConfig rcfg;
  uint64_t nacked = 0;
  media::VideoReceiver receiver(
      rcfg, [&nacked](const std::vector<uint16_t>& s) { nacked += s.size(); },
      [] {});
  util::Rng rng(seed * 77);

  std::vector<std::pair<rtp::RtpPacket, bool>> pending;  // (pkt, suppress)
  util::TimeUs t = 0;
  for (int f = 0; f < 1500; ++f) {
    t += 33'333;
    auto frame = encoder.NextFrame(t);
    bool suppress = !av1::TemplateInDecodeTarget(
        frame.template_id, av1::DecodeTarget::kDT1);
    for (auto& pkt : packetizer.Packetize(frame, t)) {
      pending.emplace_back(std::move(pkt), suppress);
    }
    // Mild reordering within the last few packets.
    for (size_t i = pending.size() > 4 ? pending.size() - 4 : 0;
         i + 1 < pending.size(); ++i) {
      if (rng.Bernoulli(0.05)) std::swap(pending[i], pending[i + 1]);
    }
    // Drain all but a small reorder window.
    while (pending.size() > 3) {
      auto [pkt, sup] = std::move(pending.front());
      pending.erase(pending.begin());
      const auto* ext = pkt.FindExtension(av1::kDdExtensionId);
      auto dd = av1::PeekMandatory(ext->data);
      core::RewritePacketView view{pkt.sequence_number, dd->frame_number,
                                   dd->start_of_frame, dd->end_of_frame,
                                   sup};
      auto res = rw.Process(view);
      if (!res.forward) continue;
      pkt.sequence_number = res.out_seq;
      receiver.OnPacket(pkt, t);
    }
    if (f % 3 == 0) receiver.OnTick(t);
  }
  return {receiver.stats().decoder_breaks, receiver.stats().total_freeze_ms,
          nacked, receiver.stats().frames_decoded};
}

}  // namespace

int main() {
  bench::Header("Ablation A: never-duplicate rule (paper §6.2)");
  std::printf("%10s %15s %12s %10s %10s\n", "rewriter", "decoder_breaks",
              "freeze[ms]", "retx_req", "decoded");
  double naive_freeze = 0, slr_freeze = 0;
  uint64_t naive_decoded = 0, slr_decoded = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    core::SkipCadence cadence = core::SkipCadence::ForDecodeTarget(1, 1);
    core::SlrRewriter slr(cadence);
    NaiveRewriter naive(cadence);
    auto good = RunThroughReceiver(slr, seed);
    auto bad = RunThroughReceiver(naive, seed);
    naive_freeze += bad.freeze_ms;
    slr_freeze += good.freeze_ms;
    naive_decoded += bad.frames_decoded;
    slr_decoded += good.frames_decoded;
    if (seed == 1) {
      std::printf("%10s %15lu %12.0f %10lu %10lu\n", "S-LR",
                  static_cast<unsigned long>(good.decoder_breaks),
                  good.freeze_ms, static_cast<unsigned long>(good.nacked),
                  static_cast<unsigned long>(good.frames_decoded));
      std::printf("%10s %15lu %12.0f %10lu %10lu\n", "naive",
                  static_cast<unsigned long>(bad.decoder_breaks),
                  bad.freeze_ms, static_cast<unsigned long>(bad.nacked),
                  static_cast<unsigned long>(bad.frames_decoded));
    }
  }
  std::printf("\nAcross 5 runs: careless offset reuse froze playback for "
              "%.1f s and decoded %lu frames; S-LR froze %.1f s and decoded "
              "%lu. Extra gaps only cost retransmissions, corrupting the "
              "sequence space breaks the decoder (paper's finding).\n",
              naive_freeze / 1000.0,
              static_cast<unsigned long>(naive_decoded), slr_freeze / 1000.0,
              static_cast<unsigned long>(slr_decoded));

  bench::Header("Ablation B: receiver-driven REMB vs sender-driven TWCC");
  // Live 3-party call: count actual control-plane packets, then compute
  // the hypothetical TWCC rate (1 feedback per ~15 media packets).
  testbed::TestbedConfig cfg;
  cfg.peer.encoder.start_bitrate_bps = 2'200'000;
  testbed::ScallopTestbed bed(cfg);
  auto meeting = bed.CreateMeeting();
  client::Peer& p1 = bed.AddPeer();
  client::Peer& p2 = bed.AddPeer();
  client::Peer& p3 = bed.AddPeer();
  p1.Join(bed.controller(), meeting);
  p2.Join(bed.controller(), meeting);
  p3.Join(bed.controller(), meeting);
  double seconds = 30.0;
  bed.RunFor(seconds);

  const auto& sw = bed.sw().stats();
  const auto& dp = bed.dataplane().stats();
  double media_pps = static_cast<double>(dp.rtp_in) / seconds;
  double agent_pps = static_cast<double>(sw.packets_to_cpu) / seconds;
  // TWCC: one transport-wide feedback per 10-20 media packets, per
  // receiving leg; each would hit the agent.
  double twcc_pps = media_pps * 2.0 / 15.0;  // 2 receivers per stream
  std::printf("media at switch:            %8.1f pkts/s\n", media_pps);
  std::printf("agent load (REMB mode):     %8.1f pkts/s\n", agent_pps);
  std::printf("agent load (TWCC mode):     %8.1f pkts/s (hypothetical)\n",
              agent_pps - static_cast<double>(dp.remb_forwarded +
                                              dp.remb_filtered) /
                              seconds +
                  twcc_pps);
  std::printf("\nTWCC would multiply the switch agent's event rate ~%.0fx — "
              "why Scallop adopts GCC's receiver-driven mode (paper §5.2).\n",
              (agent_pps + twcc_pps) / agent_pps);
  return 0;
}
