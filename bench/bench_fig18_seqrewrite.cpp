// Figure 18: erroneous-retransmission overhead of the S-LR sequence
// rewriting heuristic vs upstream loss rate. Overhead is the extra
// fraction of retransmission-triggering holes relative to what an oracle
// rewriter (with ground truth about suppression vs loss) would leave.
// Paper shape: <5% below 10% loss, ~7.5% at 20%, never above ~20%.
#include <cstdio>
#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "av1/dependency_descriptor.hpp"
#include "bench_common.hpp"
#include "core/seqrewrite.hpp"
#include "util/random.hpp"

namespace {

using namespace scallop;

struct SentPacket {
  core::RewritePacketView view;
  bool lost = false;
};

std::vector<SentPacket> GenerateStream(int frames, int dt, uint64_t seed,
                                       double loss, double reorder) {
  util::Rng rng(seed);
  av1::L1T3Pattern pattern;
  std::vector<SentPacket> out;
  uint16_t seq = 1;
  for (int f = 1; f <= frames; ++f) {
    bool key = (f == 1);
    uint8_t tmpl = pattern.NextTemplateId(key);
    bool keep = av1::TemplateInDecodeTarget(
        tmpl, static_cast<av1::DecodeTarget>(dt));
    int pkts = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < pkts; ++i) {
      SentPacket p;
      p.view.seq = seq++;
      p.view.frame = static_cast<uint16_t>(f);
      p.view.start_of_frame = (i == 0);
      p.view.end_of_frame = (i == pkts - 1);
      p.view.suppress = !keep;
      p.lost = rng.Bernoulli(loss);
      out.push_back(p);
    }
  }
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (rng.Bernoulli(reorder)) std::swap(out[i], out[i + 1]);
  }
  return out;
}

int CountHoles(const std::vector<uint16_t>& received) {
  if (received.empty()) return 0;
  std::set<int> seen;
  int max_seq = 0, min_seq = 1 << 16;
  for (uint16_t s : received) {
    seen.insert(s);
    max_seq = std::max(max_seq, static_cast<int>(s));
    min_seq = std::min(min_seq, static_cast<int>(s));
  }
  return (max_seq - min_seq + 1) - static_cast<int>(seen.size());
}

struct Overhead {
  double slr;
  double slm;
};

Overhead Measure(double loss, int runs, int frames) {
  int64_t slr_holes = 0, slm_holes = 0, oracle_holes = 0, forwarded = 0;
  for (int run = 1; run <= runs; ++run) {
    // Receiver-specific adaptation at DT1 (the common 15 fps case) with
    // mild reordering on top of the loss sweep.
    auto stream = GenerateStream(frames, 1,
                                 static_cast<uint64_t>(run) * 7919, loss,
                                 0.01);
    core::SkipCadence cadence = core::SkipCadence::ForDecodeTarget(1, 1);
    core::SlrRewriter slr(cadence);
    core::SlmRewriter slm(cadence);
    core::OracleRewriter oracle;
    // The oracle learns the stream in *send* order (by sequence number),
    // independent of the network's reordering.
    {
      auto in_order = stream;
      std::sort(in_order.begin(), in_order.end(),
                [](const SentPacket& a, const SentPacket& b) {
                  return a.view.seq < b.view.seq;
                });
      for (const auto& p : in_order) {
        oracle.NoteSenderPacket(p.view.seq, p.view.suppress);
      }
    }
    std::vector<uint16_t> out_slr, out_slm, out_oracle;
    for (const auto& p : stream) {
      if (p.lost) continue;
      auto a = slr.Process(p.view);
      if (a.forward) out_slr.push_back(a.out_seq);
      auto b = slm.Process(p.view);
      if (b.forward) out_slm.push_back(b.out_seq);
      auto c = oracle.Process(p.view);
      if (c.forward) out_oracle.push_back(c.out_seq);
    }
    slr_holes += CountHoles(out_slr);
    slm_holes += CountHoles(out_slm);
    oracle_holes += CountHoles(out_oracle);
    // Normalize by the adapted stream's size (packets the receiver should
    // get), not by the survivors of the loss process.
    for (const auto& p : stream) {
      if (!p.view.suppress) ++forwarded;
    }
  }
  if (forwarded == 0) return {0.0, 0.0};
  Overhead o;
  o.slr = static_cast<double>(slr_holes - oracle_holes) /
          static_cast<double>(forwarded);
  o.slm = static_cast<double>(slm_holes - oracle_holes) /
          static_cast<double>(forwarded);
  return o;
}

}  // namespace

int main() {
  bench::Header("Figure 18: erroneous re-tx rate of S-LR vs loss rate");
  bool full = bench::FullScale();
  const int kRuns = full ? 50 : 15;
  const int kFrames = full ? 2000 : 800;

  std::printf("%10s %16s %16s\n", "loss_rate", "S-LR overhead", "S-LM overhead");
  double at10 = 0, at20 = 0, max_overhead = 0;
  for (double loss : {0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50,
                      0.60, 0.80, 0.95}) {
    Overhead o = Measure(loss, kRuns, kFrames);
    std::printf("%10.2f %15.2f%% %15.2f%%\n", loss, 100.0 * o.slr,
                100.0 * o.slm);
    if (loss == 0.10) at10 = o.slr;
    if (loss == 0.20) at20 = o.slr;
    max_overhead = std::max(max_overhead, o.slr);
  }
  std::printf("\nS-LR: %.1f%% @ 10%% loss (paper <5%%), %.1f%% @ 20%% "
              "(paper ~7.5%%), max %.1f%% (paper <20%%)\n",
              100 * at10, 100 * at20, 100 * max_overhead);
  return 0;
}
