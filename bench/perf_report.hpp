// Machine-readable bench results: every perf bench emits one
// BENCH_<area>.json so the repo carries a pinned perf trajectory instead
// of scrolled-away stdout. The schema is deliberately flat and
// line-oriented so the regression gate (bench_check) can parse it without
// a JSON library:
//
//   {
//     "schema": "scallop-bench-v1",
//     "area": "scheduler",
//     "metrics": [
//       {"name": "events_per_sec", "value": 1.23456e+06,
//        "unit": "events/s", "higher_is_better": true},
//       ...
//     ],
//     "params": [
//       {"name": "peers", "value": 240},
//       ...
//     ]
//   }
//
// Everything except metric values is deterministic for a given bench
// binary (pinned by tests/test_perf_report.cpp); values are wall-clock
// throughputs and vary run to run. `higher_is_better` metrics are gated
// by bench_check against the committed baselines in bench/baselines/
// (fail on a >40% drop); informational metrics set it to false.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

namespace scallop::bench {

struct PerfMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = true;
};

struct PerfParam {
  std::string name;
  double value = 0.0;
};

class PerfReport {
 public:
  explicit PerfReport(std::string area) : area_(std::move(area)) {}

  void AddMetric(const std::string& name, double value,
                 const std::string& unit, bool higher_is_better = true);
  void AddParam(const std::string& name, double value);

  const std::string& area() const { return area_; }
  const std::vector<PerfMetric>& metrics() const { return metrics_; }
  const std::vector<PerfParam>& params() const { return params_; }
  const PerfMetric* FindMetric(const std::string& name) const;

  std::string ToJson() const;

  // Writes BENCH_<area>.json into $SCALLOP_BENCH_DIR (falling back to the
  // working directory) and returns the path ("" on write failure).
  std::string WriteJson() const;

  // Parses a report serialized by ToJson(); nullopt on malformed input.
  static std::optional<PerfReport> Parse(const std::string& json);

 private:
  std::string area_;
  std::vector<PerfMetric> metrics_;
  std::vector<PerfParam> params_;
};

// Monotonic wall-clock stopwatch for throughput metrics.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scallop::bench
